#include "explore/explorer.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "explore/predictor.hh"
#include "obs/log.hh"
#include "obs/tracer.hh"
#include "sim/batch.hh"
#include "util/atomic_file.hh"
#include "util/env.hh"
#include "util/kmeans.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/shutdown.hh"
#include "workload/characteristics.hh"
#include "workload/trace.hh"

namespace xps
{

namespace
{

/** Stable cache key over the architectural fields of a config. */
std::string
archKey(const CoreConfig &cfg)
{
    std::ostringstream key;
    key << cfg.clockNs << '|' << cfg.width << '|' << cfg.robSize << '|'
        << cfg.iqSize << '|' << cfg.lsqSize << '|' << cfg.schedDepth
        << '|' << cfg.lsqDepth << '|' << cfg.l1Sets << '|'
        << cfg.l1Assoc << '|' << cfg.l1LineBytes << '|' << cfg.l1Cycles
        << '|' << cfg.l2Sets << '|' << cfg.l2Assoc << '|'
        << cfg.l2LineBytes << '|' << cfg.l2Cycles;
    return key.str();
}

std::vector<std::pair<std::string, double>>
memoToVector(const std::unordered_map<std::string, double> &memo)
{
    return {memo.begin(), memo.end()};
}

/** Characterization length for the surrogate's workload features: a
 *  short fixed stream — the features only need to *separate*
 *  workloads, not measure them precisely, and the cost is paid once
 *  per workload-round. */
constexpr uint64_t kSurrogateCharInstrs = 50000;

} // namespace

Explorer::Explorer(std::vector<WorkloadProfile> suite,
                   ExplorerOptions opts, ExploreBounds bounds)
    : suite_(std::move(suite)), opts_(opts), timing_(),
      space_(timing_, bounds)
{
    if (suite_.empty())
        fatal("Explorer: empty workload suite");
    if (opts_.rounds < 1)
        fatal("Explorer: bad options");
    opts_.threads = resolveThreads(opts_.threads);
    if (opts_.checkpointEvery > 0 && opts_.checkpointDir.empty())
        opts_.checkpointDir = Budget::get().resultsDir + "/checkpoints";
    if (opts_.supervised && opts_.supervisorOpts.workers <= 0)
        opts_.supervisorOpts.workers = opts_.threads;
}

double
Explorer::evaluate(const WorkloadProfile &profile,
                   const CoreConfig &config, uint64_t instrs,
                   std::shared_ptr<const TraceBuffer> trace)
{
    SimOptions opts;
    opts.measureInstrs = instrs;
    opts.trace = std::move(trace);
    return simulate(profile, config, opts).ipt();
}

std::vector<size_t>
Explorer::reduceWorkloads(const std::vector<WorkloadProfile> &suite,
                         size_t k)
{
    if (k == 0 || k > suite.size())
        fatal("reduceWorkloads: k=%zu out of range for %zu workloads",
              k, suite.size());
    std::vector<std::vector<double>> points;
    points.reserve(suite.size());
    for (const auto &profile : suite)
        points.push_back(
            measureCharacteristics(profile).featureVector());
    // The seed is pinned (not derived from the exploration seed):
    // the workload -> representative mapping must be identical for
    // any run over the same suite, or resumed and fresh runs would
    // anneal different subsets.
    return kMeansRepresentatives(points, k, kWorkloadClusterSeed);
}

CsvManifest
Explorer::checkpointIdentity() const
{
    CsvManifest m;
    m.set("schema", std::string("1"));
    m.set("eval_instrs", opts_.evalInstrs);
    m.set("sa_iters", opts_.saIters);
    m.set("rounds", static_cast<uint64_t>(opts_.rounds));
    m.set("seed", opts_.seed);
    m.set("final_eval_instrs", opts_.finalEvalInstrs);
    // The frontier width changes the walk's trajectory (multiple-try
    // proposals), so scalar and batched runs must not resume each
    // other's checkpoints. Likewise the surrogate (its vetoes change
    // which proposals are simulated) and the workload-reduction
    // mapping (it changes which workloads anneal at all).
    m.set("xps_batch", envUInt("XPS_BATCH", 1));
    m.set("xps_surrogate", envUInt("XPS_SURROGATE", 0));
    m.set("xps_reduce_workloads", envUInt("XPS_REDUCE_WORKLOADS", 0));
    m.set("adoption_margin", formatHexDouble(opts_.adoptionMargin));
    m.set("gross_adoption_margin",
          formatHexDouble(opts_.grossAdoptionMargin));
    const AnnealParams anneal; // schedule shape is part of identity
    m.set("anneal_initial_temp", formatHexDouble(anneal.initialTemp));
    m.set("anneal_final_temp", formatHexDouble(anneal.finalTemp));
    m.set("anneal_rollback", formatHexDouble(anneal.rollbackFraction));
    const ExploreBounds &b = space_.bounds();
    std::ostringstream bounds;
    bounds << formatHexDouble(b.minClockNs) << ';'
           << formatHexDouble(b.maxClockNs) << ';'
           << b.maxL1CapacityBytes << ';' << b.maxL2CapacityBytes
           << ';' << b.maxSchedDepth << ';' << b.maxLsqDepth << ';'
           << b.maxL1Cycles << ';' << b.maxL2Cycles;
    m.set("bounds", bounds.str());
    std::ostringstream profiles;
    for (size_t w = 0; w < suite_.size(); ++w) {
        char fp[32];
        std::snprintf(fp, sizeof(fp), "%016llx",
                      static_cast<unsigned long long>(
                          profileFingerprint(suite_[w])));
        profiles << (w ? ";" : "") << suite_[w].name << ':' << fp;
    }
    m.set("profiles", profiles.str());
    return m;
}

std::string
Explorer::workloadCheckpointPath(size_t w) const
{
    return opts_.checkpointDir + "/" + suite_[w].name + ".ckpt";
}

std::string
Explorer::suiteCheckpointPath() const
{
    return opts_.checkpointDir + "/suite.ckpt";
}

SuiteWorkloadState
Explorer::annealWorkloadRound(
    size_t w, int round, const SuiteWorkloadState &in,
    const CsvManifest &identity, uint64_t itersPerRound,
    const std::shared_ptr<const TraceBuffer> &trace) const
{
    const bool ckpt = opts_.checkpointEvery > 0;
    Metrics &metrics = Metrics::global();
    obs::ScopedSpan round_span("explore.round", "explore", [&] {
        return obs::Args()
            .add("workload", suite_[w].name)
            .add("round", round);
    });

    std::unordered_map<std::string, double> memo(in.memo.begin(),
                                                 in.memo.end());
    uint64_t evals = in.evals;
    uint64_t adoptions = in.adoptions;

    // XPS_SURROGATE=1: an online ridge-regression model over (config
    // knobs x workload characteristics) rides along with the walk
    // (DESIGN.md §12). It learns from every full-fidelity simulation
    // and pre-screens frontier proposals: a candidate it is
    // confidently sure the Metropolis rule would reject is vetoed
    // without being simulated. Its state round-trips through
    // checkpoints so resumed runs veto identically.
    const bool surrogate_on = envUInt("XPS_SURROGATE", 0) != 0;
    Counter &ctr_sur_obs = metrics.counter("surrogate.observations");
    Counter &ctr_sur_pred = metrics.counter("surrogate.predictions");
    Counter &ctr_sur_veto = metrics.counter("surrogate.screened");
    Histogram *err_hist =
        Metrics::histogramsEnabled()
            ? &metrics.histogram("surrogate.error_ppm")
            : nullptr;
    IpcPredictor pred;
    Characteristics chars;
    if (surrogate_on) {
        obs::ScopedSpan char_span(
            "surrogate.characterize", "explore", [&] {
                return obs::Args()
                    .add("workload", suite_[w].name)
                    .add("instrs", kSurrogateCharInstrs);
            });
        chars = measureCharacteristics(suite_[w], kSurrogateCharInstrs);
        if (!in.surrogate.empty() &&
            !IpcPredictor::parse(in.surrogate, pred)) {
            warn("explore[%s]: unparsable surrogate state; model "
                 "restarts untrained", suite_[w].name.c_str());
        }
    }
    auto observe_sim = [&](const CoreConfig &cfg, double ipt) {
        if (!surrogate_on)
            return;
        const bool was_armed = pred.armed();
        const double err =
            pred.observe(IpcPredictor::features(cfg, chars), ipt);
        ctr_sur_obs.add();
        if (was_armed && err_hist)
            err_hist->record(static_cast<uint64_t>(err * 1e6));
    };

    auto objective = [&](const CoreConfig &cfg) {
        ProcPool::beat(); // liveness for the supervised mode
        const std::string key = archKey(cfg);
        const auto it = memo.find(key);
        if (it != memo.end())
            return it->second;
        const double ipt = evaluate(suite_[w], cfg, opts_.evalInstrs,
                                    trace);
        ++evals;
        memo.emplace(key, ipt);
        observe_sim(cfg, ipt);
        return ipt;
    };

    AnnealParams params;
    params.iterations = itersPerRound;
    params.seed = opts_.seed * 0x9e3779b97f4a7c15ULL +
                  w * 1315423911ULL + static_cast<uint64_t>(round);
    params.traceLabel = suite_[w].name;
    Annealer annealer(space_, objective, params);

    // XPS_BATCH > 1: score each round's proposals as a frontier
    // through the batched simulator (shared decode + warmup,
    // successive-halving screen — DESIGN.md §11). The walk this
    // produces is a multiple-try variant of the scalar one, which is
    // why the width is part of the checkpoint identity.
    const uint64_t batch_width = envUInt("XPS_BATCH", 1);
    const uint32_t frontier_width = static_cast<uint32_t>(
        std::max<uint64_t>(1, batch_width));
    std::unique_ptr<BatchSimulator> batch;
    if ((batch_width > 1 || surrogate_on) && trace) {
        BatchOptions bopts;
        bopts.measureInstrs = opts_.evalInstrs;
        batch = std::make_unique<BatchSimulator>(trace, bopts);
        const std::vector<ScreenCut> cuts =
            BatchSimulator::defaultCuts(frontier_width);
        annealer.setFrontier(
            [&, cuts](const std::vector<CoreConfig> &cands,
                      const FrontierContext &ctx,
                      std::vector<double> &scores,
                      std::vector<uint8_t> &full) {
                ProcPool::beat();
                scores.assign(cands.size(), 0.0);
                full.assign(cands.size(), kScreenPartial);
                // Fidelity ladder: memo -> surrogate veto -> short-
                // window cuts -> full-length confirm. The memo is
                // first (it persists across rounds and checkpoints);
                // then the surrogate vetoes confidently-bad
                // proposals without simulating them at all; the
                // survivors go through the screened batch, and only
                // full-length results are trusted or learned from.
                std::vector<size_t> pos;
                std::vector<CoreConfig> to_sim;
                std::vector<std::vector<double>> phis;
                for (size_t i = 0; i < cands.size(); ++i) {
                    const auto it = memo.find(archKey(cands[i]));
                    if (it != memo.end()) {
                        scores[i] = it->second;
                        full[i] = kScreenFull;
                        continue;
                    }
                    if (surrogate_on) {
                        std::vector<double> phi =
                            IpcPredictor::features(cands[i], chars);
                        ctr_sur_pred.add();
                        if (pred.confidentlyBelow(
                                phi, ctx.currentScore, ctx.temp)) {
                            scores[i] = pred.predict(phi);
                            full[i] = kScreenVeto;
                            ctr_sur_veto.add();
                            obs::instant(
                                "surrogate.veto", "explore", [&] {
                                    return obs::Args()
                                        .add("workload",
                                             suite_[w].name)
                                        .add("predicted", scores[i]);
                                });
                            continue;
                        }
                        phis.push_back(std::move(phi));
                    }
                    pos.push_back(i);
                    to_sim.push_back(cands[i]);
                }
                if (to_sim.empty())
                    return;
                const ScreenOutcome outcome = batch->screen(to_sim,
                                                            cuts);
                for (size_t j = 0; j < pos.size(); ++j) {
                    if (!outcome.full[j])
                        continue;
                    const double ipt = outcome.stats[j].ipt();
                    scores[pos[j]] = ipt;
                    full[pos[j]] = kScreenFull;
                    ++evals;
                    memo.emplace(archKey(cands[pos[j]]), ipt);
                    if (surrogate_on) {
                        const bool was_armed = pred.armed();
                        const double err = pred.observe(phis[j], ipt);
                        ctr_sur_obs.add();
                        if (was_armed && err_hist)
                            err_hist->record(
                                static_cast<uint64_t>(err * 1e6));
                    }
                }
            },
            frontier_width);
    }

    AnnealerState st;
    bool resumed = false;
    if (ckpt) {
        std::string content;
        WorkloadCheckpoint wc;
        if (readFile(workloadCheckpointPath(w), content) &&
            parseWorkloadCheckpoint(content, identity, wc) &&
            wc.round == round) {
            st = std::move(wc.anneal);
            memo.clear();
            memo.insert(wc.memo.begin(), wc.memo.end());
            evals = wc.evals;
            adoptions = wc.adoptions;
            if (surrogate_on && !wc.surrogate.empty() &&
                !IpcPredictor::parse(wc.surrogate, pred)) {
                warn("explore[%s]: unparsable checkpointed surrogate "
                     "state; model restarts untrained",
                     suite_[w].name.c_str());
            }
            resumed = true;
            metrics.counter("checkpoint.workload_resumes").add();
            verbose("explore[%s] resuming round %d at iteration %llu",
                    suite_[w].name.c_str(), round,
                    static_cast<unsigned long long>(st.iteration));
        }
    }
    if (!resumed)
        st = annealer.begin(in.current);

    Annealer::CheckpointHook hook;
    if (ckpt) {
        hook = [&](const AnnealerState &snap) {
            WorkloadCheckpoint wc;
            wc.round = round;
            wc.anneal = snap;
            wc.evals = evals;
            wc.adoptions = adoptions;
            wc.memo = memoToVector(memo);
            if (surrogate_on)
                wc.surrogate = pred.serialize();
            atomicWriteFile(workloadCheckpointPath(w),
                            serializeWorkloadCheckpoint(wc, identity),
                            "checkpoint.write");
            metrics.counter("checkpoint.writes").add();
            obs::instant("checkpoint.write", "io", [&] {
                return obs::Args()
                    .add("workload", suite_[w].name)
                    .add("round", round)
                    .add("iteration", snap.iteration);
            });
            verbose("explore[%s] checkpoint: round %d iteration "
                    "%llu/%llu", suite_[w].name.c_str(), round,
                    static_cast<unsigned long long>(snap.iteration),
                    static_cast<unsigned long long>(itersPerRound));
            if (opts_.checkpointWrittenHook)
                opts_.checkpointWrittenHook(workloadCheckpointPath(w));
        };
    }
    annealer.resume(st, opts_.checkpointEvery, hook);

    SuiteWorkloadState out;
    out.current = st.result.best;
    out.currentIpt = st.result.bestScore;
    out.evals = evals;
    out.adoptions = adoptions;
    out.memo = memoToVector(memo);
    if (surrogate_on)
        out.surrogate = pred.serialize();
    return out;
}

std::vector<WorkloadResult>
Explorer::exploreAll()
{
    const size_t n = suite_.size();
    const bool ckpt = opts_.checkpointEvery > 0;
    // The identity manifest also validates supervised worker result
    // files, so it is needed whenever either machinery is on.
    const CsvManifest identity = (ckpt || opts_.supervised)
                                     ? checkpointIdentity()
                                     : CsvManifest{};
    Metrics &metrics = Metrics::global();
    supervisorReport_ = SupervisorReport{};
    obs::setProcessName(opts_.supervised ? "explorer/supervisor"
                                         : "explorer");
    obs::ScopedSpan explore_span("explore.all", "explore", [&] {
        return obs::Args()
            .add("workloads", static_cast<uint64_t>(n))
            .add("rounds", opts_.rounds)
            .add("supervised", opts_.supervised ? 1 : 0);
    });
    const auto wall_start = std::chrono::steady_clock::now();
    auto elapsed_s = [&] {
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - wall_start;
        return dt.count();
    };

    // With checkpointing on, SIGINT/SIGTERM become a request to stop
    // at the next durable boundary (annealer checkpoint cadence or
    // the round barrier) instead of dying with work in flight; the
    // run exits kGracefulExitCode and a rerun resumes bit-identical.
    if (ckpt)
        installShutdownHandlers();

    std::vector<WorkloadResult> results(n);
    std::vector<CoreConfig> current(n, space_.initialConfig());
    std::vector<double> current_ipt(n, 0.0);
    // Per-workload evaluation memo (each is touched by one worker at
    // a time; adoption runs single-threaded between rounds).
    std::vector<std::unordered_map<std::string, double>> memo(n);
    std::vector<std::atomic<uint64_t>> evals(n);
    for (auto &e : evals)
        e.store(0);
    std::vector<uint64_t> adoptions(n, 0);
    // Per-workload serialized surrogate model (empty when
    // XPS_SURROGATE is off); carried across rounds and through the
    // suite barrier checkpoint like the memo.
    std::vector<std::string> surrogate(n);

    // XPS_REDUCE_WORKLOADS=K: anneal only the K cluster
    // representatives of the suite's workload characteristics;
    // rep[w] == w marks a representative. Every workload — including
    // the skipped ones, on their representative's configuration —
    // is still validated at full fidelity in the final phase below.
    std::vector<size_t> rep(n);
    for (size_t w = 0; w < n; ++w)
        rep[w] = w;
    const uint64_t reduce_k = envUInt("XPS_REDUCE_WORKLOADS", 0);
    if (reduce_k > 0 && reduce_k < n) {
        obs::ScopedSpan reduce_span("explore.reduce", "explore", [&] {
            return obs::Args()
                .add("workloads", static_cast<uint64_t>(n))
                .add("clusters", reduce_k);
        });
        rep = reduceWorkloads(suite_,
                              static_cast<size_t>(reduce_k));
        size_t skipped = 0;
        for (size_t w = 0; w < n; ++w) {
            if (rep[w] != w)
                ++skipped;
        }
        metrics.counter("surrogate.workloads_reduced").add(skipped);
        inform("workload reduction: annealing %zu of %zu workloads "
               "(XPS_REDUCE_WORKLOADS=%llu)", n - skipped, n,
               static_cast<unsigned long long>(reduce_k));
    }

    const uint64_t iters_per_round =
        std::max<uint64_t>(1, opts_.saIters /
                              static_cast<uint64_t>(opts_.rounds));

    // --- resume the round-barrier state ------------------------------------
    int start_round = 0;
    SuiteCheckpoint::Phase phase = SuiteCheckpoint::Phase::Anneal;
    uint64_t adopt_index = 0;
    std::vector<double> final_ipt(n, 0.0);
    bool have_final_ipt = false;
    if (ckpt) {
        std::string content;
        SuiteCheckpoint sc;
        if (readFile(suiteCheckpointPath(), content)) {
            if (parseSuiteCheckpoint(content, identity, sc) &&
                sc.workloads.size() == n) {
                for (size_t w = 0; w < n; ++w) {
                    current[w] = sc.workloads[w].current;
                    current_ipt[w] = sc.workloads[w].currentIpt;
                    evals[w].store(sc.workloads[w].evals);
                    adoptions[w] = sc.workloads[w].adoptions;
                    memo[w].insert(sc.workloads[w].memo.begin(),
                                   sc.workloads[w].memo.end());
                    surrogate[w] = sc.workloads[w].surrogate;
                }
                start_round = sc.round;
                phase = sc.phase;
                adopt_index = sc.adoptIndex;
                if (phase != SuiteCheckpoint::Phase::Anneal) {
                    final_ipt = sc.finalIpt;
                    have_final_ipt = final_ipt.size() == n;
                }
                metrics.counter("checkpoint.suite_resumes").add();
                inform("resuming exploration from %s (round %d/%d)",
                       suiteCheckpointPath().c_str(), start_round,
                       opts_.rounds);
            } else {
                warn("ignoring stale or corrupt checkpoint %s",
                     suiteCheckpointPath().c_str());
                metrics.counter("checkpoint.rejected").add();
            }
        }
    }

    auto write_suite_ckpt = [&](int round, SuiteCheckpoint::Phase ph,
                                uint64_t adopt_idx) {
        if (!ckpt)
            return;
        SuiteCheckpoint sc;
        sc.round = round;
        sc.phase = ph;
        sc.adoptIndex = adopt_idx;
        if (ph != SuiteCheckpoint::Phase::Anneal)
            sc.finalIpt = final_ipt;
        sc.workloads.resize(n);
        for (size_t w = 0; w < n; ++w) {
            sc.workloads[w].current = current[w];
            sc.workloads[w].currentIpt = current_ipt[w];
            sc.workloads[w].evals = evals[w].load();
            sc.workloads[w].adoptions = adoptions[w];
            sc.workloads[w].memo = memoToVector(memo[w]);
            sc.workloads[w].surrogate = surrogate[w];
        }
        atomicWriteFile(suiteCheckpointPath(),
                        serializeSuiteCheckpoint(sc, identity));
        metrics.counter("checkpoint.writes").add();
        obs::instant("checkpoint.write", "io", [&] {
            return obs::Args()
                .add("workload", "suite")
                .add("round", round)
                .add("phase", static_cast<int>(ph));
        });
        if (opts_.checkpointWrittenHook)
            opts_.checkpointWrittenHook(suiteCheckpointPath());
    };

    // Materialize each workload's stream once; the annealing inner
    // loop then replays the shared buffer for every candidate
    // configuration instead of regenerating it per evaluation.
    // (Evaluations run with the default warmup: measure + warmup =
    // 2 * evalInstrs ops.) Deferred until annealing actually runs so
    // a resume straight into the final phase skips the cost.
    std::vector<std::shared_ptr<const TraceBuffer>> traces(n);

    auto cached_eval = [&](size_t w, const CoreConfig &cfg) {
        auto &m = memo[w];
        const std::string key = archKey(cfg);
        const auto it = m.find(key);
        if (it != m.end())
            return it->second;
        const double ipt =
            evaluate(suite_[w], cfg, opts_.evalInstrs, traces[w]);
        evals[w].fetch_add(1, std::memory_order_relaxed);
        m.emplace(key, ipt);
        return ipt;
    };

    const bool anneal_rounds_remain =
        phase == SuiteCheckpoint::Phase::Anneal &&
        start_round < opts_.rounds;
    if (anneal_rounds_remain) {
        for (size_t w = 0; w < n; ++w) {
            if (rep[w] == w)
                traces[w] =
                    sharedTrace(suite_[w], 0, 2 * opts_.evalInstrs);
        }
    }

    if (anneal_rounds_remain) {
        ScopedTimer timer("explore.anneal_seconds");
        std::unique_ptr<Supervisor> sup;
        if (opts_.supervised)
            sup = std::make_unique<Supervisor>(opts_.supervisorOpts);
        // Workloads whose annealing job was quarantined: their
        // configuration is frozen at the last completed round and the
        // suite degrades gracefully instead of aborting.
        std::vector<bool> frozen(n, false);

        auto snapshotState = [&](size_t w) {
            SuiteWorkloadState in;
            in.current = current[w];
            in.currentIpt = current_ipt[w];
            in.evals = evals[w].load();
            in.adoptions = adoptions[w];
            in.memo = memoToVector(memo[w]);
            in.surrogate = surrogate[w];
            return in;
        };
        auto installState = [&](size_t w, const SuiteWorkloadState &out) {
            current[w] = out.current;
            current_ipt[w] = out.currentIpt;
            evals[w].store(out.evals);
            adoptions[w] = out.adoptions;
            memo[w] = std::unordered_map<std::string, double>(
                out.memo.begin(), out.memo.end());
            surrogate[w] = out.surrogate;
        };

        for (int round = start_round; round < opts_.rounds; ++round) {
            if (!sup) {
                // Thread pool: each workload is touched by exactly one
                // worker, so snapshot/install need no locking.
                std::atomic<size_t> next{0};
                std::atomic<size_t> done_count{0};
                auto worker = [&]() {
                    for (size_t w = next.fetch_add(1); w < n;
                         w = next.fetch_add(1)) {
                        if (rep[w] != w)
                            continue; // reduced away: rep anneals
                        const SuiteWorkloadState out =
                            annealWorkloadRound(w, round,
                                                snapshotState(w),
                                                identity,
                                                iters_per_round,
                                                traces[w]);
                        installState(w, out);
                        const size_t done = done_count.fetch_add(1) + 1;
                        verbose("explore[%s] round %d: best IPT %.3f "
                                "(%s)", suite_[w].name.c_str(), round,
                                out.currentIpt,
                                out.current.summary().c_str());
                        inform("explore progress: round %d/%d, %zu/%zu "
                               "workloads, %llu evaluations, %.1fs",
                               round + 1, opts_.rounds, done, n,
                               static_cast<unsigned long long>(
                                   metrics
                                       .counter("anneal.evaluations")
                                       .get()),
                               elapsed_s());
                    }
                };
                std::vector<std::thread> pool;
                const int nthreads =
                    std::min<int>(opts_.threads, static_cast<int>(n));
                pool.reserve(static_cast<size_t>(nthreads));
                for (int t = 0; t < nthreads; ++t)
                    pool.emplace_back(worker);
                for (auto &t : pool)
                    t.join();
            } else {
                // Supervised process pool: each workload-round runs in
                // a forked worker that inherits the suite state by
                // fork and publishes its post-round state through an
                // identity-validated result file; a crashed or hung
                // worker is retried (resuming from its checkpoint
                // when one exists) and can never publish a torn cell.
                std::vector<ProcJob> jobs;
                std::vector<size_t> job_workload;
                for (size_t w = 0; w < n; ++w) {
                    if (frozen[w] || rep[w] != w)
                        continue;
                    ProcJob job;
                    job.name = suite_[w].name + ".round" +
                               std::to_string(round);
                    const std::string result_path =
                        sup->stagingPath(job.name + ".result");
                    const auto trace = traces[w];
                    job.run = [this, w, round, identity,
                               iters_per_round, trace, result_path,
                               &snapshotState]() {
                        const SuiteWorkloadState out =
                            annealWorkloadRound(w, round,
                                                snapshotState(w),
                                                identity,
                                                iters_per_round, trace);
                        SuiteCheckpoint sc;
                        sc.round = round;
                        sc.workloads.push_back(out);
                        atomicWriteFile(result_path,
                                        serializeSuiteCheckpoint(
                                            sc, identity),
                                        "worker.result");
                        return 0;
                    };
                    job.onSuccess = [this, w, round, identity,
                                     result_path, &installState,
                                     &elapsed_s]() {
                        std::string content;
                        SuiteCheckpoint sc;
                        if (!readFile(result_path, content) ||
                            !parseSuiteCheckpoint(content, identity,
                                                  sc) ||
                            sc.round != round ||
                            sc.workloads.size() != 1)
                            return false;
                        installState(w, sc.workloads[0]);
                        std::error_code ec;
                        std::filesystem::remove(result_path, ec);
                        inform("explore progress: round %d/%d, %s "
                               "merged, %.1fs", round + 1, opts_.rounds,
                               suite_[w].name.c_str(), elapsed_s());
                        return true;
                    };
                    jobs.push_back(std::move(job));
                    job_workload.push_back(w);
                }
                const std::vector<ProcJobOutcome> outcomes =
                    sup->run(jobs);
                for (size_t j = 0; j < outcomes.size(); ++j) {
                    if (outcomes[j].status ==
                        ProcJobOutcome::Status::Quarantined) {
                        frozen[job_workload[j]] = true;
                        warn("explore[%s]: round %d quarantined; "
                             "freezing its configuration at the last "
                             "completed round",
                             suite_[job_workload[j]].name.c_str(),
                             round);
                    }
                }
            }

            // Cross-adoption (§4.1) *between* rounds: a workload that
            // performs clearly better on another workload's incumbent
            // takes it as its own and keeps annealing from there in
            // the next round, exactly as in the paper — so adopted
            // configurations re-specialize instead of collapsing the
            // suite onto a few shared architectures. No adoption
            // after the final round.
            if (round < opts_.rounds - 1) {
                ScopedTimer adopt_timer("explore.adopt_seconds");
                obs::ScopedSpan adopt_span(
                    "explore.adopt", "explore", [&] {
                        return obs::Args().add("round", round);
                    });
                for (size_t w = 0; w < n; ++w) {
                    if (rep[w] != w)
                        continue; // non-reps inherit after the rounds
                    for (size_t other = 0; other < n; ++other) {
                        if (other == w || rep[other] != other)
                            continue;
                        if (current[other].sameArch(current[w]))
                            continue;
                        const double ipt =
                            cached_eval(w, current[other]);
                        if (ipt > current_ipt[w] *
                                      (1.0 + opts_.adoptionMargin)) {
                            current[w] = current[other];
                            current_ipt[w] = ipt;
                            ++adoptions[w];
                            metrics.counter("explore.adoptions").add();
                            obs::log::event(
                                obs::log::Level::Info, "explore",
                                "round adoption", [&] {
                                    return obs::Args()
                                        .add("round", round)
                                        .add("workload",
                                             suite_[w].name)
                                        .add("from",
                                             suite_[other].name)
                                        .add("ipt", ipt);
                                });
                        }
                    }
                }
            }
            // After the last round, hand every reduced-away workload
            // its representative's configuration — the final phase
            // below then validates *all* workloads on their
            // configurations at full fidelity (and gross adoption can
            // still override a bad cluster assignment). Done before
            // the barrier write so a resume straight into the final
            // phase sees the propagated configurations.
            if (round == opts_.rounds - 1) {
                for (size_t w = 0; w < n; ++w) {
                    if (rep[w] != w)
                        current[w] = current[rep[w]];
                }
            }
            // Round barrier: commit the post-adoption suite state in
            // one atomic file, so a crash never mixes pre- and
            // post-adoption state across workloads.
            write_suite_ckpt(round + 1, SuiteCheckpoint::Phase::Anneal,
                             0);
            inform("exploration round %d/%d done", round + 1,
                   opts_.rounds);
            // The supervised parent never enters the annealer itself,
            // so its stop point is here, right after the barrier
            // commit (threaded runs usually exit inside the annealer
            // first).
            if (ckpt && stopRequested()) {
                inform("explore: stop requested; round %d barrier is "
                       "durable, exiting gracefully", round + 1);
                obs::flushTrace();
                std::exit(kGracefulExitCode);
            }
        }
        if (sup)
            supervisorReport_ = sup->report();
    }

    // Final pass at the (longer) final evaluation length: score every
    // configuration, and apply the paper's adoption rule one last time
    // for gross violations only — a workload whose own annealing ended
    // in a clearly inferior local optimum takes the better foreign
    // configuration, while small noise-level differences keep the
    // customized configurations distinct.
    ScopedTimer final_timer("explore.final_seconds");
    obs::ScopedSpan final_span("explore.final", "explore");
    const uint64_t score_instrs = opts_.finalEvalInstrs > 0
                                      ? opts_.finalEvalInstrs
                                      : opts_.evalInstrs;
    // The registry grows each trace in place of regenerating it; the
    // annealing-length buffers above remain valid for their holders.
    for (size_t w = 0; w < n; ++w)
        traces[w] = sharedTrace(suite_[w], 0, 2 * score_instrs);
    if (!have_final_ipt) {
        for (size_t w = 0; w < n; ++w) {
            final_ipt[w] = evaluate(suite_[w], current[w],
                                    score_instrs, traces[w]);
            evals[w].fetch_add(1, std::memory_order_relaxed);
        }
        write_suite_ckpt(opts_.rounds,
                         SuiteCheckpoint::Phase::FinalScored, 0);
        adopt_index = 0;
    }
    for (size_t w = adopt_index; w < n; ++w) {
        for (size_t other = 0; other < n; ++other) {
            if (other == w || current[other].sameArch(current[w]))
                continue;
            const double ipt = evaluate(suite_[w], current[other],
                                        score_instrs, traces[w]);
            evals[w].fetch_add(1, std::memory_order_relaxed);
            if (ipt > final_ipt[w] *
                          (1.0 + opts_.grossAdoptionMargin)) {
                current[w] = current[other];
                final_ipt[w] = ipt;
                ++adoptions[w];
                metrics.counter("explore.adoptions").add();
            }
        }
        write_suite_ckpt(opts_.rounds,
                         SuiteCheckpoint::Phase::FinalAdopt, w + 1);
    }

    for (size_t w = 0; w < n; ++w) {
        results[w].workload = suite_[w].name;
        results[w].best = current[w];
        results[w].best.name = suite_[w].name;
        results[w].bestIpt = final_ipt[w];
        results[w].evaluations = evals[w].load();
        results[w].adoptions = adoptions[w];
    }

    // Exploration complete: the checkpoints have served their purpose
    // and must not shadow a future (possibly different) run.
    if (ckpt) {
        std::error_code ec;
        for (size_t w = 0; w < n; ++w)
            std::filesystem::remove(workloadCheckpointPath(w), ec);
        std::filesystem::remove(suiteCheckpointPath(), ec);
        metrics.counter("checkpoint.completed_runs").add();
    }
    return results;
}

} // namespace xps
