#include "explore/explorer.hh"

#include <atomic>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/env.hh"
#include "util/logging.hh"
#include "workload/trace.hh"

namespace xps
{

namespace
{

/** Stable cache key over the architectural fields of a config. */
std::string
archKey(const CoreConfig &cfg)
{
    std::ostringstream key;
    key << cfg.clockNs << '|' << cfg.width << '|' << cfg.robSize << '|'
        << cfg.iqSize << '|' << cfg.lsqSize << '|' << cfg.schedDepth
        << '|' << cfg.lsqDepth << '|' << cfg.l1Sets << '|'
        << cfg.l1Assoc << '|' << cfg.l1LineBytes << '|' << cfg.l1Cycles
        << '|' << cfg.l2Sets << '|' << cfg.l2Assoc << '|'
        << cfg.l2LineBytes << '|' << cfg.l2Cycles;
    return key.str();
}

} // namespace

Explorer::Explorer(std::vector<WorkloadProfile> suite,
                   ExplorerOptions opts, ExploreBounds bounds)
    : suite_(std::move(suite)), opts_(opts), timing_(),
      space_(timing_, bounds)
{
    if (suite_.empty())
        fatal("Explorer: empty workload suite");
    if (opts_.rounds < 1)
        fatal("Explorer: bad options");
    opts_.threads = resolveThreads(opts_.threads);
}

double
Explorer::evaluate(const WorkloadProfile &profile,
                   const CoreConfig &config, uint64_t instrs,
                   std::shared_ptr<const TraceBuffer> trace)
{
    SimOptions opts;
    opts.measureInstrs = instrs;
    opts.trace = std::move(trace);
    return simulate(profile, config, opts).ipt();
}

std::vector<WorkloadResult>
Explorer::exploreAll()
{
    const size_t n = suite_.size();
    std::vector<WorkloadResult> results(n);
    std::vector<CoreConfig> current(n, space_.initialConfig());
    std::vector<double> current_ipt(n, 0.0);
    // Per-workload evaluation memo (each is touched by one worker at
    // a time; adoption runs single-threaded between rounds).
    std::vector<std::unordered_map<std::string, double>> memo(n);
    std::vector<std::atomic<uint64_t>> evals(n);
    for (auto &e : evals)
        e.store(0);

    const uint64_t iters_per_round =
        std::max<uint64_t>(1, opts_.saIters /
                              static_cast<uint64_t>(opts_.rounds));

    // Materialize each workload's stream once; the annealing inner
    // loop then replays the shared buffer for every candidate
    // configuration instead of regenerating it per evaluation.
    // (Evaluations run with the default warmup: measure + warmup =
    // 2 * evalInstrs ops.)
    std::vector<std::shared_ptr<const TraceBuffer>> traces(n);
    for (size_t w = 0; w < n; ++w)
        traces[w] = sharedTrace(suite_[w], 0, 2 * opts_.evalInstrs);

    auto cached_eval = [&](size_t w, const CoreConfig &cfg) {
        auto &m = memo[w];
        const std::string key = archKey(cfg);
        const auto it = m.find(key);
        if (it != m.end())
            return it->second;
        const double ipt =
            evaluate(suite_[w], cfg, opts_.evalInstrs, traces[w]);
        evals[w].fetch_add(1, std::memory_order_relaxed);
        m.emplace(key, ipt);
        return ipt;
    };

    for (int round = 0; round < opts_.rounds; ++round) {
        std::atomic<size_t> next{0};
        auto worker = [&]() {
            for (size_t w = next.fetch_add(1); w < n;
                 w = next.fetch_add(1)) {
                AnnealParams params;
                params.iterations = iters_per_round;
                params.seed = opts_.seed * 0x9e3779b97f4a7c15ULL +
                              w * 1315423911ULL +
                              static_cast<uint64_t>(round);
                Annealer annealer(
                    space_,
                    [&, w](const CoreConfig &cfg) {
                        return cached_eval(w, cfg);
                    },
                    params);
                const AnnealResult res = annealer.run(current[w]);
                current[w] = res.best;
                current_ipt[w] = res.bestScore;
                verbose("explore[%s] round %d: best IPT %.3f (%s)",
                        suite_[w].name.c_str(), round, res.bestScore,
                        res.best.summary().c_str());
            }
        };
        std::vector<std::thread> pool;
        const int nthreads =
            std::min<int>(opts_.threads, static_cast<int>(n));
        pool.reserve(static_cast<size_t>(nthreads));
        for (int t = 0; t < nthreads; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();

        // Cross-adoption (§4.1) *between* rounds: a workload that
        // performs clearly better on another workload's incumbent
        // takes it as its own and keeps annealing from there in the
        // next round, exactly as in the paper — so adopted
        // configurations re-specialize instead of collapsing the
        // suite onto a few shared architectures. No adoption after
        // the final round.
        if (round < opts_.rounds - 1) {
            for (size_t w = 0; w < n; ++w) {
                for (size_t other = 0; other < n; ++other) {
                    if (other == w)
                        continue;
                    if (current[other].sameArch(current[w]))
                        continue;
                    const double ipt =
                        cached_eval(w, current[other]);
                    if (ipt > current_ipt[w] *
                                  (1.0 + opts_.adoptionMargin)) {
                        current[w] = current[other];
                        current_ipt[w] = ipt;
                        ++results[w].adoptions;
                    }
                }
            }
        }
        inform("exploration round %d/%d done", round + 1, opts_.rounds);
    }

    // Final pass at the (longer) final evaluation length: score every
    // configuration, and apply the paper's adoption rule one last time
    // for gross violations only — a workload whose own annealing ended
    // in a clearly inferior local optimum takes the better foreign
    // configuration, while small noise-level differences keep the
    // customized configurations distinct.
    const uint64_t score_instrs = opts_.finalEvalInstrs > 0
                                      ? opts_.finalEvalInstrs
                                      : opts_.evalInstrs;
    // The registry grows each trace in place of regenerating it; the
    // annealing-length buffers above remain valid for their holders.
    for (size_t w = 0; w < n; ++w)
        traces[w] = sharedTrace(suite_[w], 0, 2 * score_instrs);
    std::vector<double> final_ipt(n);
    for (size_t w = 0; w < n; ++w) {
        final_ipt[w] =
            evaluate(suite_[w], current[w], score_instrs, traces[w]);
        evals[w].fetch_add(1, std::memory_order_relaxed);
    }
    for (size_t w = 0; w < n; ++w) {
        for (size_t other = 0; other < n; ++other) {
            if (other == w || current[other].sameArch(current[w]))
                continue;
            const double ipt = evaluate(suite_[w], current[other],
                                        score_instrs, traces[w]);
            evals[w].fetch_add(1, std::memory_order_relaxed);
            if (ipt > final_ipt[w] *
                          (1.0 + opts_.grossAdoptionMargin)) {
                current[w] = current[other];
                final_ipt[w] = ipt;
                ++results[w].adoptions;
            }
        }
    }

    for (size_t w = 0; w < n; ++w) {
        results[w].workload = suite_[w].name;
        results[w].best = current[w];
        results[w].best.name = suite_[w].name;
        results[w].bestIpt = final_ipt[w];
        results[w].evaluations = evals[w].load();
    }
    return results;
}

} // namespace xps
