/**
 * @file
 * The per-workload exploration driver: runs a simulated-annealing
 * search for every workload of a suite (in parallel across worker
 * threads), with the paper's cross-adoption acceleration (§4.1): after
 * each round, every workload is evaluated on every other workload's
 * incumbent configuration and adopts it when it performs better there
 * than on its own.
 *
 * The output — one customized configuration per workload — is the
 * paper's *configurational characterization* of the suite.
 *
 * Long explorations are crash-safe (DESIGN.md §7): with
 * `checkpointEvery` > 0, per-workload checkpoint files and a suite
 * barrier file are written atomically under `checkpointDir`, and a
 * restarted Explorer resumes from them transparently, producing
 * results bit-identical to an uninterrupted run. Checkpoints carry an
 * identity manifest (budget, seeds, profile fingerprints, bounds);
 * stale or corrupted checkpoint files are ignored, never half-used.
 */

#ifndef XPS_EXPLORE_EXPLORER_HH
#define XPS_EXPLORE_EXPLORER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "explore/annealer.hh"
#include "explore/checkpoint.hh"
#include "explore/search_space.hh"
#include "explore/supervisor.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workload/profile.hh"

namespace xps
{

/** Exploration budget and schedule. */
struct ExplorerOptions
{
    uint64_t evalInstrs = 60000; ///< instructions per evaluation
    uint64_t saIters = 300;      ///< total annealing steps per workload
    int rounds = 3;              ///< annealing rounds (adoption between)
    /** Worker threads (<=0: resolveThreads() — i.e. XPS_THREADS,
     *  else the hardware concurrency). */
    int threads = 0;
    uint64_t seed = 7;           ///< master seed
    /** Evaluation length used to score the final configurations
     *  (0 = use evalInstrs). */
    uint64_t finalEvalInstrs = 0;
    /** Minimum relative gain before a foreign configuration is
     *  adopted between rounds (guards config diversity against eval
     *  noise). */
    double adoptionMargin = 0.02;
    /** After the final round, a workload still adopts a foreign
     *  configuration that beats its own by at least this much at the
     *  final evaluation length (the paper's adoption rule, applied
     *  only to gross violations so diversity is preserved). */
    double grossAdoptionMargin = 0.08;

    /** Annealing iterations between checkpoint writes; 0 disables
     *  checkpointing entirely (the default — the cached experiment
     *  pipeline turns it on from XPS_CHECKPOINT_EVERY). */
    uint64_t checkpointEvery = 0;
    /** Checkpoint directory; empty resolves to
     *  $XPS_RESULTS_DIR/checkpoints when checkpointing is enabled. */
    std::string checkpointDir;
    /** Test-only fault-injection hook: called (possibly from worker
     *  threads or processes) after every checkpoint file write with
     *  its path. */
    std::function<void(const std::string &)> checkpointWrittenHook;

    /** Run each per-workload annealing round in a forked, supervised
     *  worker process (DESIGN.md §9) instead of a thread: crashes and
     *  hangs are retried from the last checkpoint and a repeatedly
     *  failing workload is quarantined (its configuration frozen)
     *  rather than aborting the suite. Results are bit-identical to
     *  the threaded mode. Enabled by XPS_SUPERVISE in the cached
     *  experiment pipeline. */
    bool supervised = false;
    /** Supervision policy when `supervised` (workers defaults to
     *  `threads` when <= 0). */
    SupervisorOptions supervisorOpts;
};

/** One workload's exploration outcome. */
struct WorkloadResult
{
    std::string workload;
    CoreConfig best;        ///< customized configuration (name = workload)
    double bestIpt = 0.0;   ///< IPT of the workload on `best`
    uint64_t evaluations = 0;
    uint64_t adoptions = 0; ///< times a foreign config was adopted
};

/** Multi-workload exploration (xp-scalar's main tool). */
class Explorer
{
  public:
    Explorer(std::vector<WorkloadProfile> suite,
             ExplorerOptions opts = ExplorerOptions{},
             ExploreBounds bounds = ExploreBounds{});

    /** Run the full exploration (resuming from checkpoints when
     *  enabled and present); results in suite order. */
    std::vector<WorkloadResult> exploreAll();

    /** Evaluate one workload on one configuration (IPT). With a
     *  trace, the stream is replayed from the shared buffer —
     *  identical result, a fraction of the cost. */
    static double evaluate(const WorkloadProfile &profile,
                           const CoreConfig &config, uint64_t instrs,
                           std::shared_ptr<const TraceBuffer> trace =
                               nullptr);

    const SearchSpace &space() const { return space_; }

    /**
     * The XPS_REDUCE_WORKLOADS=K mapping: cluster the suite's
     * workload characteristics into K groups (fixed seed
     * kWorkloadClusterSeed, so the mapping is stable run to run) and
     * return, for each workload, the index of its cluster's
     * representative. exploreAll() then anneals only representatives
     * and validates every workload — including the skipped ones, on
     * their representative's configuration — at full fidelity in the
     * final phase.
     */
    static std::vector<size_t> reduceWorkloads(
        const std::vector<WorkloadProfile> &suite, size_t k);

    /** The identity manifest embedded in this exploration's
     *  checkpoints (budget, seeds, profile fingerprints, bounds). */
    CsvManifest checkpointIdentity() const;

    /** Supervision outcome of the last supervised exploreAll():
     *  crashes, hangs, retries, and quarantined workload-rounds.
     *  Empty after a threaded run. */
    const SupervisorReport &supervisorReport() const
    {
        return supervisorReport_;
    }

  private:
    std::string workloadCheckpointPath(size_t w) const;
    std::string suiteCheckpointPath() const;

    /** One workload's annealing round: resume from its checkpoint
     *  when one matches, anneal, and return the post-round state.
     *  Pure over `in` + files, so it runs identically on a worker
     *  thread or inside a forked worker process. */
    SuiteWorkloadState annealWorkloadRound(
        size_t w, int round, const SuiteWorkloadState &in,
        const CsvManifest &identity, uint64_t itersPerRound,
        const std::shared_ptr<const TraceBuffer> &trace) const;

    std::vector<WorkloadProfile> suite_;
    ExplorerOptions opts_;
    UnitTiming timing_;
    SearchSpace space_;
    SupervisorReport supervisorReport_;
};

} // namespace xps

#endif // XPS_EXPLORE_EXPLORER_HH
