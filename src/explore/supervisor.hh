/**
 * @file
 * Exploration-level supervision (DESIGN.md §9): a thin façade that
 * binds the generic supervised worker pool (util/procpool.hh) to the
 * exploration pipeline's conventions — environment-derived policy
 * (XPS_SUPERVISE / XPS_HEARTBEAT_S / XPS_JOB_DEADLINE_S /
 * XPS_JOB_RETRIES), a staging directory for worker result files, and
 * a cumulative run report (crashes, hangs, retries, quarantined jobs)
 * that callers embed in their results manifest. The Explorer and
 * PerfMatrix::buildSupervised() both drive their forked jobs through
 * one Supervisor so a long suite shares one policy and one report.
 */

#ifndef XPS_EXPLORE_SUPERVISOR_HH
#define XPS_EXPLORE_SUPERVISOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/procpool.hh"

namespace xps
{

/** Supervision policy plus staging location. */
struct SupervisorOptions
{
    /** Concurrent workers (<=0: resolveThreads()). */
    int workers = 0;
    /** Kill a worker silent for this long (seconds, 0 = off). */
    double heartbeatTimeoutSeconds = 30.0;
    /** Wall-clock limit per job attempt (seconds, 0 = unlimited). */
    double jobDeadlineSeconds = 0.0;
    /** Attempts before quarantine (>= 1). */
    int maxAttempts = 3;
    double backoffBaseSeconds = 0.05;
    double backoffCapSeconds = 2.0;
    uint64_t jitterSeed = 1;
    /** Staging directory for worker result files; empty resolves to
     *  $XPS_RESULTS_DIR/supervised.<pid> (created on demand, removed
     *  by the destructor when empty). */
    std::string workDir;

    /** Resolve policy from the environment knobs (util/env.hh). */
    static SupervisorOptions fromEnv();
};

/** One abandoned job, as recorded in the run report. */
struct QuarantinedJob
{
    std::string name;
    int attempts = 0;
    std::string lastError;
};

/** One job's full supervision history (every attempt with timing and
 *  exit detail) — what xps-report renders without guessing. */
struct SupervisedJobRecord
{
    std::string name;
    std::string status; ///< "done" or "quarantined"
    std::vector<ProcAttempt> attempts;
};

/** Cumulative supervision outcome of a run — the results manifest's
 *  record that cells are missing and why, instead of an abort. */
struct SupervisorReport
{
    uint64_t crashes = 0;
    uint64_t hangs = 0;
    uint64_t retries = 0;
    std::vector<QuarantinedJob> quarantined;
    std::vector<SupervisedJobRecord> jobs;

    std::string toJson() const;
};

/** The façade. One instance per supervised run. */
class Supervisor
{
  public:
    explicit Supervisor(SupervisorOptions opts = SupervisorOptions{});
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /** Run a batch on the pool; outcomes in job order. Failures and
     *  quarantines accumulate into report(). */
    std::vector<ProcJobOutcome> run(const std::vector<ProcJob> &jobs);

    const SupervisorReport &report() const { return report_; }

    /** Atomically write report().toJson() to `path`. */
    void writeReport(const std::string &path) const;

    /** The staging directory (created lazily by stagingPath). */
    const std::string &workDir() const { return opts_.workDir; }

    /** Absolute staging path for a worker result file. */
    std::string stagingPath(const std::string &file) const;

    const SupervisorOptions &options() const { return opts_; }

  private:
    SupervisorOptions opts_;
    SupervisorReport report_;
};

} // namespace xps

#endif // XPS_EXPLORE_SUPERVISOR_HH
