/**
 * @file
 * Online ridge-regression IPC/IPT predictor for surrogate-guided
 * annealing (DESIGN.md §12). The model maps a feature embedding of
 * (configuration knobs x workload characteristics) to a predicted
 * objective score, is trained incrementally — one recursive-least-
 * squares update per *real* simulation the annealer pays for — and
 * reports a predictive standard deviation alongside every mean, so
 * screening can be uncertainty-aware: a proposal is vetoed only when
 * the model is both trained (>= minObservations updates) and
 * confident (mean + kappa*sd still clearly below the walk's current
 * score).
 *
 * The safety contract is architectural, not statistical: a veto can
 * only *skip* a simulation the Metropolis rule would all but surely
 * have rejected — every score the walk actually trusts, and every
 * configuration it can adopt, still comes from a full-fidelity
 * simulation (the confirm rung of the fidelity ladder). A wrong
 * confident prediction can therefore waste or misdirect search
 * effort, never corrupt a result.
 *
 * The entire model state serializes to one line of decimal counters
 * and C99 hex-floats, so checkpointed explorations resume with the
 * exact model — and hence the exact screening decisions — of an
 * uninterrupted run.
 */

#ifndef XPS_EXPLORE_PREDICTOR_HH
#define XPS_EXPLORE_PREDICTOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "workload/characteristics.hh"

namespace xps
{

/** Screening policy of an IpcPredictor. Not serialized: the knobs
 *  are construction-time policy, the serialized state is the learned
 *  model. */
struct PredictorOptions
{
    /** Ridge prior precision: P0 = I / lambda. */
    double lambda = 1.0;
    /** Updates before the model may veto anything. */
    uint64_t minObservations = 24;
    /** Confidence multiplier: veto only when mean + kappa * sd is
     *  still below the threshold. */
    double kappa = 3.0;
    /** Temperature margin (in units of the annealer's relative
     *  temperature) between "predicted worse" and "vetoable": a veto
     *  requires the upper confidence bound below
     *  current * (1 - vetoMargin * temp), i.e. a proposal whose
     *  Metropolis acceptance probability would be at most
     *  exp(-vetoMargin) even if the prediction is exact. Smaller is
     *  more aggressive (more skipped work, weaker trajectory
     *  preservation); the honesty of adopted results is unaffected
     *  either way. */
    double vetoMargin = 10.0;
};

class IpcPredictor
{
  public:
    /** Feature dimension: 1 bias + 16 config knobs (clock twice:
     *  1/clockNs and log2(clockNs)) + 8 workload characteristic axes
     *  (Characteristics::featureVector). */
    static constexpr size_t kDim = 25;

    explicit IpcPredictor(PredictorOptions opts = PredictorOptions{});

    /** Embed a (configuration, workload) pair. Config capacities are
     *  log2-scaled (matching the clustering embeddings); 1/clockNs
     *  rides along explicitly since IPT = IPC / clockNs makes the
     *  objective near-linear in frequency. */
    static std::vector<double> features(const CoreConfig &cfg,
                                        const Characteristics &chars);

    /** Predicted mean score for a feature vector. */
    double predict(const std::vector<double> &phi) const;
    /** Predictive standard deviation (noise + parameter
     *  uncertainty). */
    double uncertainty(const std::vector<double> &phi) const;

    /** True once the model has seen minObservations updates. */
    bool armed() const { return n_ >= opts_.minObservations; }

    /**
     * The screening decision: true iff the model is armed and the
     * upper confidence bound (mean + kappa*sd) lies below
     * reference * (1 - vetoMargin * temp). `reference` is the walk's
     * round-start current score, `temp` the annealer's relative
     * temperature entering the round.
     */
    bool confidentlyBelow(const std::vector<double> &phi,
                          double reference, double temp) const;

    /**
     * One recursive-least-squares update with a full-fidelity
     * observation `y`. Returns the *pre-update* absolute relative
     * prediction error |predicted - y| / |y| (the calibration
     * sample; 0 when y == 0). Calibration quantiles only accumulate
     * once the model is armed — early wild guesses are not
     * interesting.
     */
    double observe(const std::vector<double> &phi, double y);

    uint64_t observations() const { return n_; }

    /** Predicted-vs-actual absolute relative error quantiles over
     *  the armed lifetime (all values are fractions, e.g. 0.031 =
     *  3.1%). Quantiles are bucketed upper bounds (power-of-two ppm
     *  buckets), exact enough for calibration reporting. */
    struct Calibration
    {
        uint64_t samples = 0;
        double p50 = 0.0;
        double p90 = 0.0;
        double p99 = 0.0;
        double max = 0.0;
    };
    Calibration calibration() const;

    /** Whole model state as one line of whitespace-separated tokens
     *  (bit-exact: counters in decimal, reals as C99 hex-floats). */
    std::string serialize() const;
    /** Restore from serialize() output; false (out untouched) on any
     *  malformed token or wrong token count. */
    static bool parse(const std::string &text, IpcPredictor &out);

  private:
    void meanAndLeverage(const std::vector<double> &phi, double &mean,
                         double &leverage) const;

    PredictorOptions opts_;
    uint64_t n_ = 0;    ///< observations
    double sse_ = 0.0;  ///< accumulated standardized squared error
    std::array<double, kDim> w_{};        ///< weights
    std::array<double, kDim * kDim> p_{}; ///< inverse-covariance P
    /** Calibration histogram: bucket b counts armed observations
     *  with absolute relative error in (2^(b-1), 2^b] ppm. */
    static constexpr size_t kCalibBuckets = 48;
    std::array<uint64_t, kCalibBuckets> calib_{};
    uint64_t calibSamples_ = 0;
    double calibMax_ = 0.0;
};

} // namespace xps

#endif // XPS_EXPLORE_PREDICTOR_HH
