/**
 * @file
 * Checkpoint serialization for the exploration pipeline (DESIGN.md
 * §7). Two kinds of files live under $XPS_RESULTS_DIR/checkpoints/:
 *
 *  - per-workload files (<workload>.ckpt): the annealing walk of the
 *    current round — full AnnealerState (incumbent, current point,
 *    iteration, temperature, RNG words), the workload's evaluation
 *    memo and counters. Rewritten atomically every
 *    XPS_CHECKPOINT_EVERY iterations.
 *  - one suite file (suite.ckpt): the round-barrier state — every
 *    workload's post-adoption configuration, score, memo and
 *    counters, plus final-phase progress. Written atomically at each
 *    barrier, so a crash never mixes pre- and post-adoption state.
 *
 * All floating-point values are serialized as C99 hex-floats, so a
 * resumed run continues bit-identically to an uninterrupted one. An
 * identity manifest (budget knobs, seeds, profile fingerprints,
 * search bounds) is embedded in every file; a checkpoint whose
 * manifest does not match the present run is ignored and exploration
 * restarts from scratch — stale state is never silently reused.
 * Parsing is tolerant: truncated or corrupted files yield false, not
 * a crash.
 */

#ifndef XPS_EXPLORE_CHECKPOINT_HH
#define XPS_EXPLORE_CHECKPOINT_HH

#include <string>
#include <vector>

#include "explore/annealer.hh"
#include "util/csv.hh"

namespace xps
{

/** Bit-exact double -> C99 hex-float (round-trips via parseHexDouble). */
std::string formatHexDouble(double value);

/** Parse a hex-float; false on malformed input. */
bool parseHexDouble(const std::string &text, double &out);

/** Mid-round annealing state of one workload. */
struct WorkloadCheckpoint
{
    int round = 0;      ///< round this walk belongs to
    AnnealerState anneal;
    uint64_t evals = 0;     ///< simulator evaluations so far
    uint64_t adoptions = 0; ///< foreign configurations adopted so far
    /** Evaluation memo: archKey -> IPT. */
    std::vector<std::pair<std::string, double>> memo;
    /** Serialized surrogate model state (IpcPredictor::serialize());
     *  empty when the run has no surrogate. Kept as an opaque string
     *  so checkpoints stay ignorant of the model internals. */
    std::string surrogate;
};

/** One workload's slice of the suite barrier state. */
struct SuiteWorkloadState
{
    CoreConfig current;
    double currentIpt = 0.0;
    uint64_t evals = 0;
    uint64_t adoptions = 0;
    std::vector<std::pair<std::string, double>> memo;
    /** Serialized surrogate model state; empty when absent. */
    std::string surrogate;
};

/** The round-barrier state of the whole suite. */
struct SuiteCheckpoint
{
    enum class Phase
    {
        Anneal,      ///< annealing round `round` (workload files refine)
        FinalScored, ///< all rounds done; finalIpt computed
        FinalAdopt,  ///< gross adoption: workloads [0, adoptIndex) done
    };

    int round = 0;
    Phase phase = Phase::Anneal;
    uint64_t adoptIndex = 0;
    std::vector<double> finalIpt; ///< valid in FinalScored/FinalAdopt
    std::vector<SuiteWorkloadState> workloads;
};

/** Serialize to the textual checkpoint format with the identity
 *  manifest embedded. */
std::string serializeWorkloadCheckpoint(const WorkloadCheckpoint &ckpt,
                                        const CsvManifest &identity);
std::string serializeSuiteCheckpoint(const SuiteCheckpoint &ckpt,
                                     const CsvManifest &identity);

/**
 * Parse a checkpoint file's content. Returns false — never crashes —
 * when the content is truncated, corrupted, or carries a manifest
 * different from `identity` (stale checkpoint from another budget).
 */
bool parseWorkloadCheckpoint(const std::string &content,
                             const CsvManifest &identity,
                             WorkloadCheckpoint &out);
bool parseSuiteCheckpoint(const std::string &content,
                          const CsvManifest &identity,
                          SuiteCheckpoint &out);

} // namespace xps

#endif // XPS_EXPLORE_CHECKPOINT_HH
