#include "explore/predictor.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace xps
{

IpcPredictor::IpcPredictor(PredictorOptions opts) : opts_(opts)
{
    // Ridge prior: P0 = I / lambda.
    const double p0 = 1.0 / opts_.lambda;
    for (size_t d = 0; d < kDim; ++d)
        p_[d * kDim + d] = p0;
}

std::vector<double>
IpcPredictor::features(const CoreConfig &cfg, const Characteristics &chars)
{
    std::vector<double> phi;
    phi.reserve(kDim);
    phi.push_back(1.0); // bias
    // Both 1/clockNs (IPT is IPC scaled by frequency) and log2(clockNs)
    // (latency-in-cycles effects) — the model decides which matters.
    phi.push_back(1.0 / cfg.clockNs);
    phi.push_back(std::log2(cfg.clockNs));
    phi.push_back(static_cast<double>(cfg.width));
    phi.push_back(std::log2(static_cast<double>(cfg.robSize)));
    phi.push_back(std::log2(static_cast<double>(cfg.iqSize)));
    phi.push_back(std::log2(static_cast<double>(cfg.lsqSize)));
    phi.push_back(static_cast<double>(cfg.schedDepth));
    phi.push_back(static_cast<double>(cfg.lsqDepth));
    phi.push_back(std::log2(static_cast<double>(cfg.l1CapacityBytes())));
    phi.push_back(std::log2(static_cast<double>(cfg.l1Assoc)));
    phi.push_back(std::log2(static_cast<double>(cfg.l1LineBytes)));
    phi.push_back(static_cast<double>(cfg.l1Cycles));
    phi.push_back(std::log2(static_cast<double>(cfg.l2CapacityBytes())));
    phi.push_back(std::log2(static_cast<double>(cfg.l2Assoc)));
    phi.push_back(std::log2(static_cast<double>(cfg.l2LineBytes)));
    phi.push_back(static_cast<double>(cfg.l2Cycles));
    for (double axis : chars.featureVector())
        phi.push_back(axis);
    if (phi.size() != kDim)
        std::abort(); // feature schema drifted from kDim
    return phi;
}

void
IpcPredictor::meanAndLeverage(const std::vector<double> &phi,
                              double &mean, double &leverage) const
{
    mean = 0.0;
    leverage = 0.0;
    for (size_t i = 0; i < kDim; ++i) {
        mean += w_[i] * phi[i];
        double row = 0.0;
        for (size_t j = 0; j < kDim; ++j)
            row += p_[i * kDim + j] * phi[j];
        leverage += phi[i] * row;
    }
}

double
IpcPredictor::predict(const std::vector<double> &phi) const
{
    double mean, lev;
    meanAndLeverage(phi, mean, lev);
    return mean;
}

double
IpcPredictor::uncertainty(const std::vector<double> &phi) const
{
    double mean, lev;
    meanAndLeverage(phi, mean, lev);
    // Noise variance estimate from the standardized residuals, scaled
    // by the predictive leverage (1 + phi' P phi). Before any
    // observation the noise estimate is zero, but armed() gates every
    // consumer of this number anyway.
    const double noise = n_ > 0 ? sse_ / static_cast<double>(n_) : 0.0;
    const double var = noise * (1.0 + lev);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

bool
IpcPredictor::confidentlyBelow(const std::vector<double> &phi,
                               double reference, double temp) const
{
    if (!armed())
        return false;
    const double thr = reference * (1.0 - opts_.vetoMargin * temp);
    if (!(thr > 0.0))
        return false; // margin swallows the whole score: never veto
    double mean, lev;
    meanAndLeverage(phi, mean, lev);
    const double noise = sse_ / static_cast<double>(n_);
    const double var = noise * (1.0 + lev);
    const double sd = var > 0.0 ? std::sqrt(var) : 0.0;
    return mean + opts_.kappa * sd < thr;
}

double
IpcPredictor::observe(const std::vector<double> &phi, double y)
{
    double mean, lev;
    meanAndLeverage(phi, mean, lev);
    const double err =
        y != 0.0 ? std::fabs(mean - y) / std::fabs(y) : 0.0;
    const bool was_armed = armed();

    // Recursive least squares: P phi reused for both the gain and the
    // rank-1 downdate of P.
    std::array<double, kDim> p_phi{};
    for (size_t i = 0; i < kDim; ++i) {
        double row = 0.0;
        for (size_t j = 0; j < kDim; ++j)
            row += p_[i * kDim + j] * phi[j];
        p_phi[i] = row;
    }
    const double s = 1.0 + lev;
    const double e = y - mean;
    sse_ += e * e / s;
    for (size_t i = 0; i < kDim; ++i)
        w_[i] += (e / s) * p_phi[i];
    for (size_t i = 0; i < kDim; ++i)
        for (size_t j = 0; j < kDim; ++j)
            p_[i * kDim + j] -= p_phi[i] * p_phi[j] / s;
    ++n_;

    if (was_armed) {
        ++calibSamples_;
        if (err > calibMax_)
            calibMax_ = err;
        // Bucket by power-of-two ppm: bucket b holds errors in
        // (2^(b-1), 2^b] ppm; bucket 0 holds <= 1 ppm.
        const double ppm = err * 1e6;
        size_t b = 0;
        while (b + 1 < kCalibBuckets &&
               ppm > static_cast<double>(1ULL << b))
            ++b;
        ++calib_[b];
    }
    return err;
}

IpcPredictor::Calibration
IpcPredictor::calibration() const
{
    Calibration cal;
    cal.samples = calibSamples_;
    cal.max = calibMax_;
    if (calibSamples_ == 0)
        return cal;
    auto quantile = [&](double q) {
        const uint64_t want = static_cast<uint64_t>(
            q * static_cast<double>(calibSamples_ - 1)) + 1;
        uint64_t seen = 0;
        for (size_t b = 0; b < kCalibBuckets; ++b) {
            seen += calib_[b];
            if (seen >= want)
                return static_cast<double>(1ULL << b) * 1e-6;
        }
        return cal.max;
    };
    cal.p50 = quantile(0.50);
    cal.p90 = quantile(0.90);
    cal.p99 = quantile(0.99);
    return cal;
}

std::string
IpcPredictor::serialize() const
{
    // One line: tag dim n sse calibSamples calibMax w[dim] P[dim^2]
    // calib[buckets]. Reals as hex-floats for bit-exact round trips.
    char buf[64];
    std::ostringstream out;
    out << "ipcpred1 " << kDim << ' ' << n_;
    auto hex = [&](double v) {
        std::snprintf(buf, sizeof(buf), " %a", v);
        out << buf;
    };
    hex(sse_);
    out << ' ' << calibSamples_;
    hex(calibMax_);
    for (size_t i = 0; i < kDim; ++i)
        hex(w_[i]);
    for (size_t i = 0; i < kDim * kDim; ++i)
        hex(p_[i]);
    for (size_t b = 0; b < kCalibBuckets; ++b)
        out << ' ' << calib_[b];
    return out.str();
}

bool
IpcPredictor::parse(const std::string &text, IpcPredictor &out)
{
    std::istringstream in(text);
    std::string tag;
    size_t dim = 0;
    if (!(in >> tag >> dim) || tag != "ipcpred1" || dim != kDim)
        return false;
    IpcPredictor tmp(out.opts_);
    auto real = [&](double &v) {
        std::string tok;
        if (!(in >> tok))
            return false;
        char *end = nullptr;
        v = std::strtod(tok.c_str(), &end);
        return end != nullptr && *end == '\0';
    };
    if (!(in >> tmp.n_))
        return false;
    if (!real(tmp.sse_))
        return false;
    if (!(in >> tmp.calibSamples_))
        return false;
    if (!real(tmp.calibMax_))
        return false;
    for (size_t i = 0; i < kDim; ++i)
        if (!real(tmp.w_[i]))
            return false;
    for (size_t i = 0; i < kDim * kDim; ++i)
        if (!real(tmp.p_[i]))
            return false;
    for (size_t b = 0; b < kCalibBuckets; ++b)
        if (!(in >> tmp.calib_[b]))
            return false;
    std::string extra;
    if (in >> extra)
        return false; // trailing junk
    out = tmp;
    return true;
}

} // namespace xps
