#include "explore/annealer.hh"

#include <cmath>

#include "util/logging.hh"

namespace xps
{

Annealer::Annealer(const SearchSpace &space, Objective objective,
                   AnnealParams params)
    : space_(space), objective_(std::move(objective)),
      params_(params)
{
    if (params_.iterations == 0)
        fatal("Annealer: zero iterations");
    if (params_.initialTemp <= 0.0 ||
        params_.finalTemp <= 0.0 ||
        params_.finalTemp > params_.initialTemp) {
        fatal("Annealer: bad temperature schedule");
    }
}

AnnealResult
Annealer::run(const CoreConfig &start) const
{
    Rng rng(params_.seed);

    AnnealResult result;
    CoreConfig current = start;
    double cur_score = objective_(current);
    ++result.evaluations;
    result.best = current;
    result.bestScore = cur_score;
    result.improvementTrace.emplace_back(0, cur_score);

    const double cooling =
        std::pow(params_.finalTemp / params_.initialTemp,
                 1.0 / static_cast<double>(params_.iterations));
    double temp = params_.initialTemp;

    for (uint64_t iter = 1; iter <= params_.iterations; ++iter) {
        temp *= cooling;

        CoreConfig cand;
        bool have = false;
        for (int attempt = 0; attempt < 16 && !have; ++attempt)
            have = space_.neighbor(current, rng, cand);
        if (!have)
            continue; // stuck corner; cool and retry next iteration

        const double cand_score = objective_(cand);
        ++result.evaluations;

        // Metropolis acceptance on the relative change.
        const double rel = cur_score > 0.0 ?
            (cand_score - cur_score) / cur_score : 1.0;
        const bool accept =
            rel >= 0.0 || rng.uniform() < std::exp(rel / temp);
        if (accept) {
            current = cand;
            cur_score = cand_score;
            ++result.accepted;
        }

        if (cur_score > result.bestScore) {
            result.best = current;
            result.bestScore = cur_score;
            result.improvementTrace.emplace_back(iter, cur_score);
        }

        // The paper's rollback rule: a walk that has fallen below
        // half the incumbent is abandoned.
        if (cur_score < params_.rollbackFraction * result.bestScore) {
            current = result.best;
            cur_score = result.bestScore;
        }
    }
    return result;
}

} // namespace xps
