#include "explore/annealer.hh"

#include <cmath>

#include "obs/tracer.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace xps
{

Annealer::Annealer(const SearchSpace &space, Objective objective,
                   AnnealParams params)
    : space_(space), objective_(std::move(objective)),
      params_(params)
{
    if (params_.iterations == 0)
        fatal("Annealer: zero iterations");
    if (params_.initialTemp <= 0.0 ||
        params_.finalTemp <= 0.0 ||
        params_.finalTemp > params_.initialTemp) {
        fatal("Annealer: bad temperature schedule");
    }
}

AnnealerState
Annealer::begin(const CoreConfig &start) const
{
    AnnealerState state;
    state.iteration = 0;
    state.temp = params_.initialTemp;
    state.rng = Rng(params_.seed).state();
    state.current = start;
    state.currentScore = objective_(start);
    state.result.best = start;
    state.result.bestScore = state.currentScore;
    state.result.evaluations = 1;
    state.result.improvementTrace.emplace_back(0, state.currentScore);
    return state;
}

void
Annealer::resume(AnnealerState &state, uint64_t checkpointEvery,
                 const CheckpointHook &hook) const
{
    if (state.iteration > params_.iterations)
        fatal("Annealer::resume: state is past the schedule "
              "(%llu > %llu iterations)",
              static_cast<unsigned long long>(state.iteration),
              static_cast<unsigned long long>(params_.iterations));

    Metrics &metrics = Metrics::global();
    Counter &ctr_accepts = metrics.counter("anneal.accepts");
    Counter &ctr_rejects = metrics.counter("anneal.rejects");
    Counter &ctr_rollbacks = metrics.counter("anneal.rollbacks");
    Counter &ctr_evals = metrics.counter("anneal.evaluations");

    // Observability (both off by default; each costs one predicted
    // branch per step when disabled). Handles are hoisted out of the
    // loop; the per-step instants carry the workload label so
    // xps-report can reconstruct per-workload convergence.
    const char *label =
        params_.traceLabel.empty() ? "anneal" : params_.traceLabel.c_str();
    Histogram *step_histogram =
        Metrics::histogramsEnabled() ? &metrics.histogram("anneal.step")
                                     : nullptr;
    obs::ScopedSpan resume_span("anneal.resume", "anneal", [&] {
        return obs::Args()
            .add("workload", label)
            .add("from", state.iteration)
            .add("to", params_.iterations);
    });

    Rng rng(0);
    rng.setState(state.rng);
    CoreConfig current = state.current;
    double cur_score = state.currentScore;
    AnnealResult &result = state.result;

    const double cooling =
        std::pow(params_.finalTemp / params_.initialTemp,
                 1.0 / static_cast<double>(params_.iterations));
    double temp = state.temp;

    auto sync = [&](uint64_t iter) {
        state.iteration = iter;
        state.temp = temp;
        state.rng = rng.state();
        state.current = current;
        state.currentScore = cur_score;
    };

    for (uint64_t iter = state.iteration + 1;
         iter <= params_.iterations; ++iter) {
        temp *= cooling;
        const uint64_t step_begin =
            step_histogram ? obs::detail::nowNs() : 0;

        CoreConfig cand;
        bool have = false;
        for (int attempt = 0; attempt < 16 && !have; ++attempt)
            have = space_.neighbor(current, rng, cand);
        if (have) {
            const double cand_score = objective_(cand);
            ++result.evaluations;
            ctr_evals.add();

            // Metropolis acceptance on the relative change.
            const double rel = cur_score > 0.0 ?
                (cand_score - cur_score) / cur_score : 1.0;
            const bool accept =
                rel >= 0.0 || rng.uniform() < std::exp(rel / temp);
            if (accept) {
                current = cand;
                cur_score = cand_score;
                ++result.accepted;
                ctr_accepts.add();
                obs::instant("anneal.accept", "anneal", [&] {
                    return obs::Args()
                        .add("workload", label)
                        .add("step", iter)
                        .add("temp", temp)
                        .add("obj", cand_score);
                });
            } else {
                ctr_rejects.add();
                obs::instant("anneal.reject", "anneal", [&] {
                    return obs::Args()
                        .add("workload", label)
                        .add("step", iter)
                        .add("temp", temp)
                        .add("obj", cand_score);
                });
            }

            if (cur_score > result.bestScore) {
                result.best = current;
                result.bestScore = cur_score;
                result.improvementTrace.emplace_back(iter, cur_score);
                obs::instant("anneal.improve", "anneal", [&] {
                    return obs::Args()
                        .add("workload", label)
                        .add("step", iter)
                        .add("temp", temp)
                        .add("obj", result.bestScore);
                });
            }

            // The paper's rollback rule: a walk that has fallen below
            // half the incumbent is abandoned.
            if (cur_score <
                params_.rollbackFraction * result.bestScore) {
                current = result.best;
                cur_score = result.bestScore;
                ctr_rollbacks.add();
                obs::instant("anneal.rollback", "anneal", [&] {
                    return obs::Args()
                        .add("workload", label)
                        .add("step", iter)
                        .add("temp", temp)
                        .add("obj", cur_score);
                });
            }
        }
        // else: stuck corner; cool and retry next iteration
        if (step_histogram)
            step_histogram->record(obs::detail::nowNs() - step_begin);

        if (checkpointEvery > 0 && hook &&
            (iter % checkpointEvery == 0 ||
             iter == params_.iterations)) {
            sync(iter);
            hook(state);
        }
    }
    sync(params_.iterations);
}

AnnealResult
Annealer::run(const CoreConfig &start) const
{
    AnnealerState state = begin(start);
    resume(state);
    return std::move(state.result);
}

} // namespace xps
