#include "explore/annealer.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/tracer.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/shutdown.hh"

namespace xps
{

namespace
{

/**
 * Honor a pending SIGINT/SIGTERM at a checkpoint boundary: the hook
 * has just persisted the state atomically, so this is the one spot
 * where stopping loses no work. std::exit (not _exit) so the at-exit
 * trace-shard merge and metrics dump still run; the distinct exit
 * code lets drivers tell a graceful stop from a crash.
 */
void
exitIfStopRequested(const char *label, uint64_t iter)
{
    if (!stopRequested())
        return;
    inform("anneal[%s]: stop requested; exiting at iteration %llu "
           "with a durable checkpoint", label,
           static_cast<unsigned long long>(iter));
    obs::flushTrace();
    std::exit(kGracefulExitCode);
}

} // namespace

Annealer::Annealer(const SearchSpace &space, Objective objective,
                   AnnealParams params)
    : space_(space), objective_(std::move(objective)),
      params_(params)
{
    if (params_.iterations == 0)
        fatal("Annealer: zero iterations");
    if (params_.initialTemp <= 0.0 ||
        params_.finalTemp <= 0.0 ||
        params_.finalTemp > params_.initialTemp) {
        fatal("Annealer: bad temperature schedule");
    }
}

AnnealerState
Annealer::begin(const CoreConfig &start) const
{
    AnnealerState state;
    state.iteration = 0;
    state.temp = params_.initialTemp;
    state.rng = Rng(params_.seed).state();
    state.current = start;
    state.currentScore = objective_(start);
    state.result.best = start;
    state.result.bestScore = state.currentScore;
    state.result.evaluations = 1;
    state.result.improvementTrace.emplace_back(0, state.currentScore);
    return state;
}

void
Annealer::resume(AnnealerState &state, uint64_t checkpointEvery,
                 const CheckpointHook &hook) const
{
    if (state.iteration > params_.iterations)
        fatal("Annealer::resume: state is past the schedule "
              "(%llu > %llu iterations)",
              static_cast<unsigned long long>(state.iteration),
              static_cast<unsigned long long>(params_.iterations));

    Metrics &metrics = Metrics::global();
    Counter &ctr_accepts = metrics.counter("anneal.accepts");
    Counter &ctr_rejects = metrics.counter("anneal.rejects");
    Counter &ctr_rollbacks = metrics.counter("anneal.rollbacks");
    Counter &ctr_evals = metrics.counter("anneal.evaluations");

    // Observability (both off by default; each costs one predicted
    // branch per step when disabled). Handles are hoisted out of the
    // loop; the per-step instants carry the workload label so
    // xps-report can reconstruct per-workload convergence.
    const char *label =
        params_.traceLabel.empty() ? "anneal" : params_.traceLabel.c_str();
    Histogram *step_histogram =
        Metrics::histogramsEnabled() ? &metrics.histogram("anneal.step")
                                     : nullptr;
    obs::ScopedSpan resume_span("anneal.resume", "anneal", [&] {
        return obs::Args()
            .add("workload", label)
            .add("from", state.iteration)
            .add("to", params_.iterations);
    });

    Rng rng(0);
    rng.setState(state.rng);
    CoreConfig current = state.current;
    double cur_score = state.currentScore;
    AnnealResult &result = state.result;

    const double cooling =
        std::pow(params_.finalTemp / params_.initialTemp,
                 1.0 / static_cast<double>(params_.iterations));
    double temp = state.temp;

    auto sync = [&](uint64_t iter) {
        state.iteration = iter;
        state.temp = temp;
        state.rng = rng.state();
        state.current = current;
        state.currentScore = cur_score;
    };

    // Metropolis acceptance + incumbent tracking + the paper's
    // rollback rule, for a candidate whose score is trusted. Shared
    // by the scalar and frontier paths so the decision logic cannot
    // drift between them.
    auto metropolis = [&](uint64_t iter, const CoreConfig &cand,
                          double cand_score) {
        ++result.evaluations;
        ctr_evals.add();

        // Metropolis acceptance on the relative change.
        const double rel = cur_score > 0.0 ?
            (cand_score - cur_score) / cur_score : 1.0;
        const bool accept =
            rel >= 0.0 || rng.uniform() < std::exp(rel / temp);
        if (accept) {
            current = cand;
            cur_score = cand_score;
            ++result.accepted;
            ctr_accepts.add();
            obs::instant("anneal.accept", "anneal", [&] {
                return obs::Args()
                    .add("workload", label)
                    .add("step", iter)
                    .add("temp", temp)
                    .add("obj", cand_score);
            });
        } else {
            ctr_rejects.add();
            obs::instant("anneal.reject", "anneal", [&] {
                return obs::Args()
                    .add("workload", label)
                    .add("step", iter)
                    .add("temp", temp)
                    .add("obj", cand_score);
            });
        }

        if (cur_score > result.bestScore) {
            result.best = current;
            result.bestScore = cur_score;
            result.improvementTrace.emplace_back(iter, cur_score);
            obs::instant("anneal.improve", "anneal", [&] {
                return obs::Args()
                    .add("workload", label)
                    .add("step", iter)
                    .add("temp", temp)
                    .add("obj", result.bestScore);
            });
        }

        // The paper's rollback rule: a walk that has fallen below
        // half the incumbent is abandoned.
        if (cur_score <
            params_.rollbackFraction * result.bestScore) {
            current = result.best;
            cur_score = result.bestScore;
            ctr_rollbacks.add();
            obs::instant("anneal.rollback", "anneal", [&] {
                return obs::Args()
                    .add("workload", label)
                    .add("step", iter)
                    .add("temp", temp)
                    .add("obj", cur_score);
            });
        }
    };

    if (frontier_) {
        // Frontier (batched) walk: rounds of up to `frontierWidth_`
        // neighbours of the round-start point, scored in one
        // FrontierObjective call, then judged in draw order.
        Counter &ctr_screened = metrics.counter("anneal.screened");
        Counter &ctr_vetoed = metrics.counter("anneal.vetoed");
        uint64_t iter = state.iteration;
        while (iter < params_.iterations) {
            const uint64_t round = std::min<uint64_t>(
                frontierWidth_, params_.iterations - iter);
            const uint64_t round_begin =
                step_histogram ? obs::detail::nowNs() : 0;

            // Draw the whole frontier first (RNG order: all draws,
            // then all acceptance rolls — at width 1 that is exactly
            // the scalar order, since each round has one of each).
            std::vector<CoreConfig> cands(round);
            std::vector<uint8_t> have(round, 0);
            std::vector<CoreConfig> to_eval;
            std::vector<size_t> eval_pos;
            for (uint64_t k = 0; k < round; ++k) {
                bool h = false;
                for (int attempt = 0; attempt < 16 && !h; ++attempt)
                    h = space_.neighbor(current, rng, cands[k]);
                have[k] = h;
                if (h) {
                    eval_pos.push_back(k);
                    to_eval.push_back(cands[k]);
                }
            }
            std::vector<double> scores;
            std::vector<uint8_t> full;
            const FrontierContext ctx{cur_score, temp};
            if (!to_eval.empty())
                frontier_(to_eval, ctx, scores, full);
            std::vector<double> score_of(round, 0.0);
            std::vector<uint8_t> full_of(round, 0);
            for (size_t j = 0; j < eval_pos.size(); ++j) {
                score_of[eval_pos[j]] = scores[j];
                full_of[eval_pos[j]] = full[j];
            }

            for (uint64_t k = 0; k < round; ++k) {
                ++iter;
                temp *= cooling;
                if (!have[k])
                    continue; // stuck corner; cool and retry
                if (full_of[k] == kScreenVeto) {
                    // Surrogate veto: modelled as a certain
                    // Metropolis reject of a worse candidate, so the
                    // acceptance roll such a reject would consume is
                    // burned here — a correct veto leaves the
                    // trajectory and RNG stream identical to the
                    // unscreened walk's.
                    rng.uniform();
                    ctr_rejects.add();
                    ctr_vetoed.add();
                    obs::instant("anneal.veto", "anneal", [&] {
                        return obs::Args()
                            .add("workload", label)
                            .add("step", iter)
                            .add("temp", temp);
                    });
                    continue;
                }
                if (full_of[k] == kScreenPartial) {
                    // Screened out at a cut: an auto-rejected
                    // proposal (no acceptance randomness consumed —
                    // its partial score is not comparable).
                    ctr_rejects.add();
                    ctr_screened.add();
                    obs::instant("anneal.screened", "anneal", [&] {
                        return obs::Args()
                            .add("workload", label)
                            .add("step", iter)
                            .add("temp", temp);
                    });
                    continue;
                }
                metropolis(iter, cands[k], score_of[k]);
            }

            if (step_histogram) {
                const uint64_t per =
                    (obs::detail::nowNs() - round_begin) / round;
                for (uint64_t k = 0; k < round; ++k)
                    step_histogram->record(per);
            }
            if (checkpointEvery > 0 && hook &&
                (iter / checkpointEvery >
                     (iter - round) / checkpointEvery ||
                 iter == params_.iterations)) {
                sync(iter);
                hook(state);
                exitIfStopRequested(label, iter);
            }
        }
        sync(params_.iterations);
        return;
    }

    for (uint64_t iter = state.iteration + 1;
         iter <= params_.iterations; ++iter) {
        temp *= cooling;
        const uint64_t step_begin =
            step_histogram ? obs::detail::nowNs() : 0;

        CoreConfig cand;
        bool have = false;
        for (int attempt = 0; attempt < 16 && !have; ++attempt)
            have = space_.neighbor(current, rng, cand);
        if (have)
            metropolis(iter, cand, objective_(cand));
        // else: stuck corner; cool and retry next iteration
        if (step_histogram)
            step_histogram->record(obs::detail::nowNs() - step_begin);

        if (checkpointEvery > 0 && hook &&
            (iter % checkpointEvery == 0 ||
             iter == params_.iterations)) {
            sync(iter);
            hook(state);
            exitIfStopRequested(label, iter);
        }
    }
    sync(params_.iterations);
}

AnnealResult
Annealer::run(const CoreConfig &start) const
{
    AnnealerState state = begin(start);
    resume(state);
    return std::move(state.result);
}

} // namespace xps
