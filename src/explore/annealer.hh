/**
 * @file
 * Simulated-annealing search over the superscalar design space,
 * maximizing IPT, with the paper's rollback rule: whenever the
 * current configuration's IPT drops below half of the incumbent
 * best's, the walk returns to the incumbent (§3).
 *
 * The walk's full state (incumbent, current point, iteration,
 * temperature, RNG words) is exposed as a serializable AnnealerState
 * so long explorations can checkpoint and later resume bit-identically
 * to an uninterrupted run (DESIGN.md §7).
 */

#ifndef XPS_EXPLORE_ANNEALER_HH
#define XPS_EXPLORE_ANNEALER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "explore/search_space.hh"
#include "sim/config.hh"

namespace xps
{

/** Annealing schedule parameters. */
struct AnnealParams
{
    uint64_t iterations = 260;
    /** Initial acceptance temperature, as a fraction of the current
     *  objective (relative scale keeps the schedule workload-
     *  independent). */
    double initialTemp = 0.08;
    double finalTemp = 0.005;
    uint64_t seed = 1;
    /** Rollback threshold of the paper: roll back to the incumbent
     *  when current < threshold * best. */
    double rollbackFraction = 0.5;
    /** Label for trace instants (DESIGN.md §10) — the workload name
     *  when the Explorer drives the walk. Not part of the checkpoint
     *  identity: purely observational. */
    std::string traceLabel;
};

/** Result of one annealing run. */
struct AnnealResult
{
    CoreConfig best;
    double bestScore = 0.0;
    uint64_t evaluations = 0;
    uint64_t accepted = 0;
    /** (iteration, incumbent score) every time the incumbent improves. */
    std::vector<std::pair<uint64_t, double>> improvementTrace;
};

/**
 * Round-start walk state handed to a FrontierObjective so screening
 * layers (the surrogate predictor, DESIGN.md §12) can judge proposals
 * against where the walk actually is. Both values are from the start
 * of the round; the temperature only decreases within a round, so
 * screening against the round-start value is conservative.
 */
struct FrontierContext
{
    double currentScore = 0.0; ///< walk's current objective score
    double temp = 0.0;         ///< relative temperature
};

/** FrontierObjective `full` classes (see Annealer::FrontierObjective). */
/** Screened out at a partial-fidelity cut: the score is untrusted and
 *  the walk auto-rejects without consuming acceptance randomness. */
constexpr uint8_t kScreenPartial = 0;
/** Scored at full fidelity: trusted, judged by Metropolis. */
constexpr uint8_t kScreenFull = 1;
/** Vetoed by a surrogate model as confidently-bad: the walk treats it
 *  as a certain Metropolis reject and *does* consume the acceptance
 *  roll, so a correct veto leaves the trajectory and RNG stream
 *  identical to the unscreened walk's. */
constexpr uint8_t kScreenVeto = 2;

/**
 * The complete walk state after `iteration` completed steps.
 * Restoring it (same space, objective and params) and resuming
 * continues the exact draw-for-draw trajectory of the original run.
 */
struct AnnealerState
{
    uint64_t iteration = 0; ///< completed iterations
    double temp = 0.0;      ///< temperature after `iteration` steps
    CoreConfig current;
    double currentScore = 0.0;
    std::array<uint64_t, 4> rng{}; ///< xoshiro256** words
    AnnealResult result;           ///< incumbent + counters so far
};

/**
 * The annealer. The objective is abstract (the Explorer plugs in
 * cached IPT simulation) so tests can use analytic objectives.
 */
class Annealer
{
  public:
    using Objective = std::function<double(const CoreConfig &)>;
    /**
     * Batched objective (DESIGN.md §11/§12): scores a frontier of
     * candidate configurations in one call, given the round-start
     * walk context. On return `scores` and `full` are parallel to the
     * input and each `full` entry is one of the kScreen* classes:
     * kScreenFull (trusted score, judged by Metropolis),
     * kScreenPartial (cut-screened; auto-reject, no acceptance
     * randomness consumed), or kScreenVeto (surrogate-vetoed; treated
     * as a certain Metropolis reject — one acceptance roll is burned
     * so a correct veto preserves the unscreened trajectory). The
     * Explorer plugs in predictor pre-screen + BatchSimulator::screen.
     */
    using FrontierObjective = std::function<void(
        const std::vector<CoreConfig> &, const FrontierContext &,
        std::vector<double> &, std::vector<uint8_t> &)>;
    /** Invoked with a consistent snapshot every `checkpointEvery`
     *  iterations during resume(). */
    using CheckpointHook = std::function<void(const AnnealerState &)>;

    Annealer(const SearchSpace &space, Objective objective,
             AnnealParams params);

    /**
     * Switch resume() to frontier mode: each round draws up to
     * `width` neighbours of the round-start current point, scores
     * them in one FrontierObjective call, then applies the standard
     * per-candidate Metropolis / improvement / rollback steps in draw
     * order (a multiple-try flavour of the same walk). Screened-out
     * candidates are auto-rejected proposals; they still consume
     * iterations, so the schedule length is unchanged. At width 1
     * with no screening the trajectory is bit-identical to the
     * scalar walk — same RNG consumption order, same decisions.
     * Checkpoints fire only at round boundaries, which keeps resumed
     * runs on the original round grid.
     */
    void
    setFrontier(FrontierObjective frontier, uint32_t width)
    {
        frontier_ = std::move(frontier);
        frontierWidth_ = width < 1 ? 1 : width;
    }

    /** Run from a starting configuration (begin + resume). */
    AnnealResult run(const CoreConfig &start) const;

    /** Evaluate `start` and package the iteration-zero state. */
    AnnealerState begin(const CoreConfig &start) const;

    /**
     * Advance `state` to completion. With `checkpointEvery` > 0 the
     * hook fires after every such number of completed iterations (and
     * once more at completion, so the final state is always offered).
     */
    void resume(AnnealerState &state, uint64_t checkpointEvery = 0,
                const CheckpointHook &hook = nullptr) const;

    /** True once `state` has completed the full schedule. */
    bool
    done(const AnnealerState &state) const
    {
        return state.iteration >= params_.iterations;
    }

    const AnnealParams &params() const { return params_; }

  private:
    const SearchSpace &space_;
    Objective objective_;
    FrontierObjective frontier_;
    uint32_t frontierWidth_ = 1;
    AnnealParams params_;
};

} // namespace xps

#endif // XPS_EXPLORE_ANNEALER_HH
