/**
 * @file
 * Simulated-annealing search over the superscalar design space,
 * maximizing IPT, with the paper's rollback rule: whenever the
 * current configuration's IPT drops below half of the incumbent
 * best's, the walk returns to the incumbent (§3).
 */

#ifndef XPS_EXPLORE_ANNEALER_HH
#define XPS_EXPLORE_ANNEALER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "explore/search_space.hh"
#include "sim/config.hh"

namespace xps
{

/** Annealing schedule parameters. */
struct AnnealParams
{
    uint64_t iterations = 260;
    /** Initial acceptance temperature, as a fraction of the current
     *  objective (relative scale keeps the schedule workload-
     *  independent). */
    double initialTemp = 0.08;
    double finalTemp = 0.005;
    uint64_t seed = 1;
    /** Rollback threshold of the paper: roll back to the incumbent
     *  when current < threshold * best. */
    double rollbackFraction = 0.5;
};

/** Result of one annealing run. */
struct AnnealResult
{
    CoreConfig best;
    double bestScore = 0.0;
    uint64_t evaluations = 0;
    uint64_t accepted = 0;
    /** (iteration, incumbent score) every time the incumbent improves. */
    std::vector<std::pair<uint64_t, double>> improvementTrace;
};

/**
 * The annealer. The objective is abstract (the Explorer plugs in
 * cached IPT simulation) so tests can use analytic objectives.
 */
class Annealer
{
  public:
    using Objective = std::function<double(const CoreConfig &)>;

    Annealer(const SearchSpace &space, Objective objective,
             AnnealParams params);

    /** Run from a starting configuration. */
    AnnealResult run(const CoreConfig &start) const;

  private:
    const SearchSpace &space_;
    Objective objective_;
    AnnealParams params_;
};

} // namespace xps

#endif // XPS_EXPLORE_ANNEALER_HH
