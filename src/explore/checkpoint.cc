#include "explore/checkpoint.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace xps
{

std::string
formatHexDouble(double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", value);
    return buf;
}

bool
parseHexDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end == text.c_str() + text.size();
}

namespace
{

constexpr const char *kMagic = "xps-checkpoint v1";

// --- writing ---------------------------------------------------------------

void
emitManifest(std::ostringstream &out, const CsvManifest &identity)
{
    out << kMagic << '\n';
    for (const auto &[key, value] : identity.entries)
        out << "m " << key << '=' << value << '\n';
    out << "endm\n";
}

/** Empty strings would vanish under tokenization; "-" stands in. */
std::string
encodeName(const std::string &name)
{
    if (name.empty())
        return "-";
    if (name.find_first_of(" \n") != std::string::npos ||
        name == "-") {
        fatal("checkpoint: unencodable name '%s'", name.c_str());
    }
    return name;
}

std::string
decodeName(const std::string &token)
{
    return token == "-" ? std::string() : token;
}

void
emitConfig(std::ostringstream &out, const char *tag,
           const CoreConfig &cfg)
{
    out << "config " << tag << ' ' << encodeName(cfg.name) << ' '
        << formatHexDouble(cfg.clockNs) << ' ' << cfg.width << ' '
        << cfg.robSize << ' ' << cfg.iqSize << ' ' << cfg.lsqSize
        << ' ' << cfg.schedDepth << ' ' << cfg.lsqDepth << ' '
        << cfg.l1Sets << ' ' << cfg.l1Assoc << ' ' << cfg.l1LineBytes
        << ' ' << cfg.l1Cycles << ' ' << cfg.l2Sets << ' '
        << cfg.l2Assoc << ' ' << cfg.l2LineBytes << ' ' << cfg.l2Cycles
        << '\n';
}

void
emitMemo(std::ostringstream &out,
         const std::vector<std::pair<std::string, double>> &memo)
{
    out << "memo.count " << memo.size() << '\n';
    for (const auto &[key, value] : memo)
        out << "memo " << key << ' ' << formatHexDouble(value) << '\n';
}

void
emitAnnealerState(std::ostringstream &out, const AnnealerState &st)
{
    char buf[96];
    out << "anneal.iter " << st.iteration << '\n';
    out << "anneal.temp " << formatHexDouble(st.temp) << '\n';
    std::snprintf(buf, sizeof(buf),
                  "anneal.rng %" PRIx64 " %" PRIx64 " %" PRIx64
                  " %" PRIx64 "\n",
                  st.rng[0], st.rng[1], st.rng[2], st.rng[3]);
    out << buf;
    out << "anneal.score " << formatHexDouble(st.currentScore) << '\n';
    emitConfig(out, "current", st.current);
    emitConfig(out, "best", st.result.best);
    out << "anneal.best.score " << formatHexDouble(st.result.bestScore)
        << '\n';
    out << "anneal.evals " << st.result.evaluations << '\n';
    out << "anneal.accepted " << st.result.accepted << '\n';
    out << "trace " << st.result.improvementTrace.size();
    for (const auto &[iter, score] : st.result.improvementTrace)
        out << ' ' << iter << ' ' << formatHexDouble(score);
    out << '\n';
}

// --- parsing ---------------------------------------------------------------

/** Sequential cursor over the whitespace-tokenized payload lines. */
class LineReader
{
  public:
    explicit LineReader(std::vector<std::vector<std::string>> lines)
        : lines_(std::move(lines))
    {
    }

    bool
    atEnd() const
    {
        return pos_ >= lines_.size();
    }

    /** Next line iff its first token equals `tag` and it carries
     *  exactly `args` further tokens; nullptr otherwise. */
    const std::vector<std::string> *
    expect(const char *tag, size_t args)
    {
        const auto *line = expectVariadic(tag);
        if (!line || line->size() != args + 1)
            return nullptr;
        return line;
    }

    /** Next line iff its first token equals `tag` (any arity). */
    const std::vector<std::string> *
    expectVariadic(const char *tag)
    {
        if (atEnd() || lines_[pos_].empty() ||
            lines_[pos_][0] != tag) {
            return nullptr;
        }
        return &lines_[pos_++];
    }

  private:
    std::vector<std::vector<std::string>> lines_;
    size_t pos_ = 0;
};

bool
parseU64(const std::string &text, uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end == text.c_str() + text.size();
}

bool
parseHexU64(const std::string &text, uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 16);
    return end == text.c_str() + text.size();
}

template <typename T>
bool
parseInt(const std::string &text, T &out)
{
    uint64_t v;
    if (!parseU64(text, v))
        return false;
    out = static_cast<T>(v);
    return static_cast<uint64_t>(out) == v;
}

/**
 * Split the file into manifest + tokenized payload lines; false on a
 * missing magic, unterminated manifest, manifest mismatch, or missing
 * trailing "end" marker (truncation).
 */
bool
splitCheckpoint(const std::string &content, const CsvManifest &identity,
                LineReader &reader)
{
    std::istringstream in(content);
    std::string line;
    if (!std::getline(in, line) || line != kMagic)
        return false;

    CsvManifest manifest;
    bool manifest_closed = false;
    bool saw_end = false;
    std::vector<std::vector<std::string>> payload;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (saw_end)
            return false; // data after the end marker
        if (!manifest_closed) {
            if (line == "endm") {
                manifest_closed = true;
                continue;
            }
            if (line.rfind("m ", 0) != 0)
                return false;
            const size_t eq = line.find('=', 2);
            if (eq == std::string::npos)
                return false;
            manifest.entries.emplace_back(line.substr(2, eq - 2),
                                          line.substr(eq + 1));
            continue;
        }
        if (line == "end") {
            saw_end = true;
            continue;
        }
        std::vector<std::string> tokens;
        std::istringstream tok(line);
        std::string t;
        while (tok >> t)
            tokens.push_back(std::move(t));
        payload.push_back(std::move(tokens));
    }
    if (!manifest_closed || !saw_end)
        return false;
    if (!(manifest == identity))
        return false;
    reader = LineReader(std::move(payload));
    return true;
}

bool
parseConfig(LineReader &reader, const char *tag, CoreConfig &out)
{
    const auto *line = reader.expect("config", 17);
    if (!line || (*line)[1] != tag)
        return false;
    CoreConfig cfg;
    cfg.name = decodeName((*line)[2]);
    bool ok = parseHexDouble((*line)[3], cfg.clockNs) &&
              parseInt((*line)[4], cfg.width) &&
              parseInt((*line)[5], cfg.robSize) &&
              parseInt((*line)[6], cfg.iqSize) &&
              parseInt((*line)[7], cfg.lsqSize) &&
              parseInt((*line)[8], cfg.schedDepth) &&
              parseInt((*line)[9], cfg.lsqDepth) &&
              parseU64((*line)[10], cfg.l1Sets) &&
              parseInt((*line)[11], cfg.l1Assoc) &&
              parseInt((*line)[12], cfg.l1LineBytes) &&
              parseInt((*line)[13], cfg.l1Cycles) &&
              parseU64((*line)[14], cfg.l2Sets) &&
              parseInt((*line)[15], cfg.l2Assoc) &&
              parseInt((*line)[16], cfg.l2LineBytes) &&
              parseInt((*line)[17], cfg.l2Cycles);
    if (!ok)
        return false;
    out = cfg;
    return true;
}

bool
parseMemo(LineReader &reader,
          std::vector<std::pair<std::string, double>> &out)
{
    const auto *count_line = reader.expect("memo.count", 1);
    uint64_t count;
    if (!count_line || !parseU64((*count_line)[1], count))
        return false;
    out.clear();
    out.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        const auto *line = reader.expect("memo", 2);
        double value;
        if (!line || !parseHexDouble((*line)[2], value))
            return false;
        out.emplace_back((*line)[1], value);
    }
    return true;
}

void
emitSurrogate(std::ostringstream &out, const std::string &surrogate)
{
    // Optional line; the model serialization is already a single
    // space-separated token line, emitted verbatim after the tag.
    if (!surrogate.empty())
        out << "surrogate " << surrogate << '\n';
}

bool
parseSurrogate(LineReader &reader, std::string &out)
{
    const auto *line = reader.expectVariadic("surrogate");
    if (!line)
        return true; // optional: absent is fine
    if (line->size() < 2)
        return false;
    std::string joined;
    for (size_t i = 1; i < line->size(); ++i) {
        if (i > 1)
            joined += ' ';
        joined += (*line)[i];
    }
    out = std::move(joined);
    return true;
}

bool
parseAnnealerState(LineReader &reader, AnnealerState &out)
{
    AnnealerState st;
    const auto *line = reader.expect("anneal.iter", 1);
    if (!line || !parseU64((*line)[1], st.iteration))
        return false;
    line = reader.expect("anneal.temp", 1);
    if (!line || !parseHexDouble((*line)[1], st.temp))
        return false;
    line = reader.expect("anneal.rng", 4);
    if (!line)
        return false;
    for (int i = 0; i < 4; ++i) {
        if (!parseHexU64((*line)[1 + i], st.rng[i]))
            return false;
    }
    line = reader.expect("anneal.score", 1);
    if (!line || !parseHexDouble((*line)[1], st.currentScore))
        return false;
    if (!parseConfig(reader, "current", st.current) ||
        !parseConfig(reader, "best", st.result.best)) {
        return false;
    }
    line = reader.expect("anneal.best.score", 1);
    if (!line || !parseHexDouble((*line)[1], st.result.bestScore))
        return false;
    line = reader.expect("anneal.evals", 1);
    if (!line || !parseU64((*line)[1], st.result.evaluations))
        return false;
    line = reader.expect("anneal.accepted", 1);
    if (!line || !parseU64((*line)[1], st.result.accepted))
        return false;
    line = reader.expectVariadic("trace");
    if (!line || line->size() < 2)
        return false;
    uint64_t entries;
    if (!parseU64((*line)[1], entries) ||
        line->size() != 2 + 2 * entries) {
        return false;
    }
    st.result.improvementTrace.reserve(entries);
    for (uint64_t i = 0; i < entries; ++i) {
        uint64_t iter;
        double score;
        if (!parseU64((*line)[2 + 2 * i], iter) ||
            !parseHexDouble((*line)[3 + 2 * i], score)) {
            return false;
        }
        st.result.improvementTrace.emplace_back(iter, score);
    }
    out = std::move(st);
    return true;
}

const char *
phaseName(SuiteCheckpoint::Phase phase)
{
    switch (phase) {
      case SuiteCheckpoint::Phase::Anneal: return "anneal";
      case SuiteCheckpoint::Phase::FinalScored: return "final-scored";
      case SuiteCheckpoint::Phase::FinalAdopt: return "final-adopt";
    }
    panic("checkpoint: bad phase");
}

bool
parsePhase(const std::string &token, SuiteCheckpoint::Phase &out)
{
    for (auto phase : {SuiteCheckpoint::Phase::Anneal,
                       SuiteCheckpoint::Phase::FinalScored,
                       SuiteCheckpoint::Phase::FinalAdopt}) {
        if (token == phaseName(phase)) {
            out = phase;
            return true;
        }
    }
    return false;
}

} // namespace

std::string
serializeWorkloadCheckpoint(const WorkloadCheckpoint &ckpt,
                            const CsvManifest &identity)
{
    std::ostringstream out;
    emitManifest(out, identity);
    out << "round " << ckpt.round << '\n';
    out << "evals " << ckpt.evals << '\n';
    out << "adoptions " << ckpt.adoptions << '\n';
    emitAnnealerState(out, ckpt.anneal);
    emitMemo(out, ckpt.memo);
    emitSurrogate(out, ckpt.surrogate);
    out << "end\n";
    return out.str();
}

bool
parseWorkloadCheckpoint(const std::string &content,
                        const CsvManifest &identity,
                        WorkloadCheckpoint &out)
{
    LineReader reader({});
    if (!splitCheckpoint(content, identity, reader))
        return false;
    WorkloadCheckpoint ckpt;
    const auto *line = reader.expect("round", 1);
    if (!line || !parseInt((*line)[1], ckpt.round))
        return false;
    line = reader.expect("evals", 1);
    if (!line || !parseU64((*line)[1], ckpt.evals))
        return false;
    line = reader.expect("adoptions", 1);
    if (!line || !parseU64((*line)[1], ckpt.adoptions))
        return false;
    if (!parseAnnealerState(reader, ckpt.anneal) ||
        !parseMemo(reader, ckpt.memo) ||
        !parseSurrogate(reader, ckpt.surrogate) || !reader.atEnd()) {
        return false;
    }
    out = std::move(ckpt);
    return true;
}

std::string
serializeSuiteCheckpoint(const SuiteCheckpoint &ckpt,
                         const CsvManifest &identity)
{
    std::ostringstream out;
    emitManifest(out, identity);
    out << "round " << ckpt.round << '\n';
    out << "phase " << phaseName(ckpt.phase) << '\n';
    out << "adopt.index " << ckpt.adoptIndex << '\n';
    out << "final.ipt " << ckpt.finalIpt.size();
    for (double ipt : ckpt.finalIpt)
        out << ' ' << formatHexDouble(ipt);
    out << '\n';
    out << "workloads " << ckpt.workloads.size() << '\n';
    for (const auto &w : ckpt.workloads) {
        emitConfig(out, "current", w.current);
        out << "ipt " << formatHexDouble(w.currentIpt) << '\n';
        out << "evals " << w.evals << '\n';
        out << "adoptions " << w.adoptions << '\n';
        emitMemo(out, w.memo);
        emitSurrogate(out, w.surrogate);
    }
    out << "end\n";
    return out.str();
}

bool
parseSuiteCheckpoint(const std::string &content,
                     const CsvManifest &identity, SuiteCheckpoint &out)
{
    LineReader reader({});
    if (!splitCheckpoint(content, identity, reader))
        return false;
    SuiteCheckpoint ckpt;
    const auto *line = reader.expect("round", 1);
    if (!line || !parseInt((*line)[1], ckpt.round))
        return false;
    line = reader.expect("phase", 1);
    if (!line || !parsePhase((*line)[1], ckpt.phase))
        return false;
    line = reader.expect("adopt.index", 1);
    if (!line || !parseU64((*line)[1], ckpt.adoptIndex))
        return false;
    line = reader.expectVariadic("final.ipt");
    if (!line || line->size() < 2)
        return false;
    uint64_t final_count;
    if (!parseU64((*line)[1], final_count) ||
        line->size() != 2 + final_count) {
        return false;
    }
    ckpt.finalIpt.reserve(final_count);
    for (uint64_t i = 0; i < final_count; ++i) {
        double ipt;
        if (!parseHexDouble((*line)[2 + i], ipt))
            return false;
        ckpt.finalIpt.push_back(ipt);
    }
    line = reader.expect("workloads", 1);
    uint64_t workloads;
    if (!line || !parseU64((*line)[1], workloads))
        return false;
    ckpt.workloads.reserve(workloads);
    for (uint64_t i = 0; i < workloads; ++i) {
        SuiteWorkloadState w;
        if (!parseConfig(reader, "current", w.current))
            return false;
        const auto *l = reader.expect("ipt", 1);
        if (!l || !parseHexDouble((*l)[1], w.currentIpt))
            return false;
        l = reader.expect("evals", 1);
        if (!l || !parseU64((*l)[1], w.evals))
            return false;
        l = reader.expect("adoptions", 1);
        if (!l || !parseU64((*l)[1], w.adoptions))
            return false;
        if (!parseMemo(reader, w.memo) ||
            !parseSurrogate(reader, w.surrogate)) {
            return false;
        }
        ckpt.workloads.push_back(std::move(w));
    }
    if (!reader.atEnd())
        return false;
    out = std::move(ckpt);
    return true;
}

} // namespace xps
