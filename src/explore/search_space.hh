/**
 * @file
 * The superscalar design space and its exploration moves, following
 * the paper's §3: "In each iteration, either the clock period is
 * varied, and the size of the issue queue, register-file/ROB,
 * load-store queue, L1 and L2 caches, and processor width adjusted to
 * make their access times fit within the number of pipeline stages
 * assigned to them, or the number of pipeline stages of a unit is
 * varied and its configuration appropriately adjusted."
 *
 * Window structures (IQ, ROB, LSQ) are refit to the *largest* size
 * that meets the stage budget — with performance the only objective,
 * capacity is monotonically useful for them. Cache geometry is not
 * monotone (line size vs. sets vs. ways trade off per workload), so
 * cache moves sample among the fitting geometries, biased toward
 * capacity.
 */

#ifndef XPS_EXPLORE_SEARCH_SPACE_HH
#define XPS_EXPLORE_SEARCH_SPACE_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "timing/fitting.hh"
#include "util/rng.hh"

namespace xps
{

/** Bounds of the explored space. */
struct ExploreBounds
{
    double minClockNs = 0.12;
    double maxClockNs = 0.80;
    uint64_t maxL1CapacityBytes = 512ULL << 10;
    uint64_t maxL2CapacityBytes = 8ULL << 20;
    int maxSchedDepth = 4;
    int maxLsqDepth = 4;
    int maxL1Cycles = 8;
    int maxL2Cycles = 32;
};

/** Move generator and fitting engine over CoreConfig. */
class SearchSpace
{
  public:
    explicit SearchSpace(const UnitTiming &timing,
                         const ExploreBounds &bounds = ExploreBounds{});

    /** The Table-3 starting point, refit to legality. */
    CoreConfig initialConfig() const;

    /**
     * Propose a neighbouring legal configuration (one SA move).
     * Returns false when the sampled move cannot produce a legal
     * configuration (caller should re-draw).
     */
    bool neighbor(const CoreConfig &from, Rng &rng,
                  CoreConfig &out) const;

    /**
     * Enforce every fitting constraint on `cfg` by refitting window
     * sizes (largest fitting) and, when the caches no longer fit,
     * re-sampling their geometry. Returns false when no legal
     * configuration exists at cfg's clock/depths.
     */
    bool refit(CoreConfig &cfg, Rng &rng) const;

    /** A uniformly random legal configuration (for space sampling
     *  tests and restarts). */
    CoreConfig randomConfig(Rng &rng) const;

    const ExploreBounds &bounds() const { return bounds_; }
    const UnitTiming &timing() const { return timing_; }

  private:
    bool refitWindows(CoreConfig &cfg) const;
    bool sampleL1(CoreConfig &cfg, Rng &rng) const;
    bool sampleL2(CoreConfig &cfg, Rng &rng) const;
    bool sampleCache(int depth, double clock_ns, uint64_t max_capacity,
                     Rng &rng, CacheGeom &out) const;

    const UnitTiming &timing_;
    ExploreBounds bounds_;
};

} // namespace xps

#endif // XPS_EXPLORE_SEARCH_SPACE_HH
