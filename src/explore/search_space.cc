#include "explore/search_space.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace xps
{

SearchSpace::SearchSpace(const UnitTiming &timing,
                         const ExploreBounds &bounds)
    : timing_(timing), bounds_(bounds)
{
    if (bounds_.minClockNs <= timing_.tech().latchLatencyNs)
        fatal("ExploreBounds: min clock below latch latency");
}

bool
SearchSpace::refitWindows(CoreConfig &cfg) const
{
    const uint32_t width = cfg.width;
    const uint32_t iq = maxFitting(
        timing_, candidates::iqSizes(),
        [&](uint32_t n) { return timing_.iqTotal(n, width); },
        cfg.schedDepth, cfg.clockNs);
    const uint32_t rob = maxFitting(
        timing_, candidates::robSizes(),
        [&](uint32_t n) { return timing_.regfileAccess(n, width); },
        cfg.schedDepth, cfg.clockNs);
    const uint32_t lsq = maxFitting(
        timing_, candidates::lsqSizes(),
        [&](uint32_t n) { return timing_.lsqSearch(n); },
        cfg.lsqDepth, cfg.clockNs);
    if (iq < width || rob < width || lsq < 2)
        return false;
    cfg.iqSize = iq;
    cfg.robSize = rob;
    cfg.lsqSize = lsq;
    return true;
}

bool
SearchSpace::sampleCache(int depth, double clock_ns,
                         uint64_t max_capacity, Rng &rng,
                         CacheGeom &out) const
{
    const auto fitting = cacheGeometriesFitting(timing_, depth, clock_ns,
                                                max_capacity);
    if (fitting.empty())
        return false;
    // Capacity-weighted draw: larger geometries are preferred but all
    // shapes stay reachable, so line-size / associativity trade-offs
    // are explored rather than maximized away.
    double total = 0.0;
    for (const auto &g : fitting)
        total += static_cast<double>(g.capacityBytes());
    double pick = rng.uniform() * total;
    for (const auto &g : fitting) {
        pick -= static_cast<double>(g.capacityBytes());
        if (pick <= 0.0) {
            out = g;
            return true;
        }
    }
    out = fitting.back();
    return true;
}

bool
SearchSpace::sampleL1(CoreConfig &cfg, Rng &rng) const
{
    CacheGeom geom;
    if (!sampleCache(cfg.l1Cycles, cfg.clockNs,
                     bounds_.maxL1CapacityBytes, rng, geom)) {
        return false;
    }
    cfg.l1Sets = geom.sets;
    cfg.l1Assoc = geom.assoc;
    cfg.l1LineBytes = geom.lineBytes;
    return true;
}

bool
SearchSpace::sampleL2(CoreConfig &cfg, Rng &rng) const
{
    CacheGeom geom;
    if (!sampleCache(cfg.l2Cycles, cfg.clockNs,
                     bounds_.maxL2CapacityBytes, rng, geom)) {
        return false;
    }
    cfg.l2Sets = geom.sets;
    cfg.l2Assoc = geom.assoc;
    cfg.l2LineBytes = geom.lineBytes;
    return true;
}

bool
SearchSpace::refit(CoreConfig &cfg, Rng &rng) const
{
    cfg.clockNs = std::clamp(cfg.clockNs, bounds_.minClockNs,
                             bounds_.maxClockNs);
    // Quantize to 1ps: keeps serialization lossless and the
    // evaluation memo compact.
    cfg.clockNs = std::round(cfg.clockNs * 1000.0) / 1000.0;
    cfg.schedDepth = std::clamp(cfg.schedDepth, 1, bounds_.maxSchedDepth);
    cfg.lsqDepth = std::clamp(cfg.lsqDepth, 1, bounds_.maxLsqDepth);
    cfg.l1Cycles = std::clamp(cfg.l1Cycles, 1, bounds_.maxL1Cycles);
    cfg.l2Cycles = std::clamp(cfg.l2Cycles, 1, bounds_.maxL2Cycles);

    if (!refitWindows(cfg))
        return false;

    // Keep the current cache geometries when they still fit;
    // otherwise re-sample a fitting one.
    if (!timing_.fits(timing_.cacheAccess(cfg.l1Sets, cfg.l1Assoc,
                                          cfg.l1LineBytes),
                      cfg.l1Cycles, cfg.clockNs) ||
        cfg.l1CapacityBytes() > bounds_.maxL1CapacityBytes) {
        if (!sampleL1(cfg, rng))
            return false;
    }
    if (!timing_.fits(timing_.cacheAccess(cfg.l2Sets, cfg.l2Assoc,
                                          cfg.l2LineBytes),
                      cfg.l2Cycles, cfg.clockNs) ||
        cfg.l2CapacityBytes() > bounds_.maxL2CapacityBytes ||
        cfg.l2CapacityBytes() < cfg.l1CapacityBytes()) {
        if (!sampleL2(cfg, rng))
            return false;
        // L2 must dominate L1; re-sample the L1 downward if the draw
        // came out smaller.
        int guard = 0;
        while (cfg.l2CapacityBytes() < cfg.l1CapacityBytes()) {
            if (!sampleL2(cfg, rng) || ++guard > 32)
                return false;
        }
    }
    return cfg.checkFits(timing_).empty();
}

CoreConfig
SearchSpace::initialConfig() const
{
    CoreConfig cfg = CoreConfig::initial();
    Rng rng(0x1717);
    if (!refit(cfg, rng))
        panic("SearchSpace: Table-3 initial configuration cannot be "
              "refit to legality");
    return cfg;
}

bool
SearchSpace::neighbor(const CoreConfig &from, Rng &rng,
                      CoreConfig &out) const
{
    out = from;
    // Move mix: clock scaling is the signature xp-scalar move and is
    // drawn most often; the rest vary one unit's depth/shape.
    const int move = static_cast<int>(rng.below(8));
    switch (move) {
      case 0:
      case 1: // vary the clock, keep stage counts, refit sizes
        out.clockNs = from.clockNs * rng.uniform(0.85, 1.18);
        break;
      case 2: // scheduler/regfile depth
        out.schedDepth = from.schedDepth + (rng.chance(0.5) ? 1 : -1);
        break;
      case 3: // processor width
        out.width = static_cast<uint32_t>(std::clamp<int64_t>(
            static_cast<int64_t>(from.width) +
                (rng.chance(0.5) ? 1 : -1),
            1, 8));
        break;
      case 4: // L1 pipeline depth (+ geometry re-sample)
        out.l1Cycles = from.l1Cycles + (rng.chance(0.5) ? 1 : -1);
        out.l1Cycles = std::clamp(out.l1Cycles, 1, bounds_.maxL1Cycles);
        if (!sampleL1(out, rng))
            return false;
        break;
      case 5: // L2 pipeline depth (+ geometry re-sample)
        out.l2Cycles = from.l2Cycles + (rng.chance(0.5) ? 2 : -2);
        out.l2Cycles = std::clamp(out.l2Cycles, 1, bounds_.maxL2Cycles);
        if (!sampleL2(out, rng))
            return false;
        break;
      case 6: // L1 shape move at fixed depth
        if (!sampleL1(out, rng))
            return false;
        break;
      case 7: // L2 shape move at fixed depth
        if (!sampleL2(out, rng))
            return false;
        break;
    }
    if (!refit(out, rng))
        return false;
    return !out.sameArch(from);
}

CoreConfig
SearchSpace::randomConfig(Rng &rng) const
{
    for (int attempt = 0; attempt < 256; ++attempt) {
        CoreConfig cfg;
        cfg.name = "random";
        cfg.clockNs = rng.uniform(bounds_.minClockNs, bounds_.maxClockNs);
        cfg.width = static_cast<uint32_t>(rng.range(1, 8));
        cfg.schedDepth =
            static_cast<int>(rng.range(1, bounds_.maxSchedDepth));
        cfg.lsqDepth =
            static_cast<int>(rng.range(1, bounds_.maxLsqDepth));
        cfg.l1Cycles =
            static_cast<int>(rng.range(1, bounds_.maxL1Cycles));
        cfg.l2Cycles =
            static_cast<int>(rng.range(1, bounds_.maxL2Cycles));
        if (!sampleL1(cfg, rng) || !sampleL2(cfg, rng))
            continue;
        if (refit(cfg, rng))
            return cfg;
    }
    panic("SearchSpace::randomConfig: no legal configuration found");
}

} // namespace xps
