/**
 * @file
 * Seeded property-based case generation for the differential checking
 * tier (DESIGN.md §8). A PropCase is one machine-generated scenario:
 * a random-but-legal CoreConfig (drawn through the exploration
 * SearchSpace, so every case respects the cacti-lite fitting rules)
 * paired with a random-but-valid WorkloadProfile and a small run
 * budget. Cases serialize to a stable `key=value` text form — doubles
 * as C99 hexfloats, so a replayed case is bit-identical — which is
 * what the failure corpus under tests/prop_corpus/ stores.
 *
 * Shrinking: when a case fails a property, shrinkCase() greedily
 * moves one field at a time toward a canonical baseline (the Table-3
 * initial configuration and the default profile), keeping a candidate
 * only when the property still fails, until no single-field move
 * reproduces — a local minimum, i.e. every remaining deviation from
 * the baseline is necessary to trigger the bug. shrinkDistance()
 * (the number of fields away from baseline) is the monotonically
 * decreasing measure.
 */

#ifndef XPS_CHECK_PROPGEN_HH
#define XPS_CHECK_PROPGEN_HH

#include <cstdint>
#include <functional>
#include <string>

#include "explore/search_space.hh"
#include "sim/config.hh"
#include "timing/unit_timing.hh"
#include "util/rng.hh"
#include "workload/profile.hh"

namespace xps
{

/** One generated scenario: configuration + workload + run budget. */
struct PropCase
{
    CoreConfig config;
    WorkloadProfile profile;
    uint64_t streamId = 0;
    uint64_t measureInstrs = 2500;
    uint64_t warmupInstrs = 2500;

    /** Stable replayable text form (hexfloat doubles). */
    std::string serialize() const;
    /** Inverse of serialize(); fatal on a malformed/truncated case. */
    static PropCase parse(const std::string &text);
};

/** Non-fatal mirror of WorkloadProfile::validate(). */
bool profileValid(const WorkloadProfile &profile);

/** Deterministic generator of random valid cases. */
class PropGen
{
  public:
    explicit PropGen(uint64_t seed);

    /** Draw the next random case (config legal, profile valid). */
    PropCase next();

    const UnitTiming &timing() const { return timing_; }

  private:
    WorkloadProfile randomProfile();

    UnitTiming timing_;
    SearchSpace space_;
    Rng rng_;
    uint64_t count_ = 0;
};

/** A property over cases; returns true when the case passes. */
using PropProperty = std::function<bool(const PropCase &)>;

/** Fields-away-from-baseline measure used by the shrinker. */
uint64_t shrinkDistance(const PropCase &c);

/**
 * Greedily shrink a failing case to a local minimum: the returned
 * case still fails `passes`, has shrinkDistance() no larger than the
 * input, and no legal single-field move toward the baseline fails.
 * `max_evals` bounds the number of property evaluations.
 */
PropCase shrinkCase(const PropCase &failing, const PropProperty &passes,
                    const UnitTiming &timing,
                    uint64_t max_evals = 2000);

} // namespace xps

#endif // XPS_CHECK_PROPGEN_HH
