/**
 * @file
 * Per-cycle structural invariant checker for OooCore (DESIGN.md §8).
 *
 * The core calls a small set of hooks (dispatch / issue / commit /
 * fetch / cycle end) whenever a checker is attached; each hook is
 * guarded by a single null-pointer test on the core side, so an
 * unchecked run pays nothing but that branch. The checker keeps its
 * own shadow state — it derives every limit (widths, functional-unit
 * counts, wakeup latencies, front-end depth) independently from the
 * CoreConfig rather than trusting the core's internals — and asserts:
 *
 *   - ROB / IQ / LSQ occupancy never exceeds the configured capacity;
 *   - commit order is program order (sequence numbers are contiguous);
 *   - an instruction is dispatched before it issues, issues before it
 *     commits, and commits no earlier than its completion cycle;
 *   - dispatch respects the front-end pipeline delay;
 *   - per-cycle commit / issue / dispatch / fetch counts never exceed
 *     `width`;
 *   - per-cycle functional-unit limits hold (ALU ops <= width,
 *     multiplies <= max(1, width/3), memory ops <= 2 cache ports);
 *   - no consumer issues before its producer's operands can be
 *     available: max(completion, issue + 1 + awaken latency), or the
 *     producer's commit cycle if it retires first.
 *
 * The wakeup-latency check recomputes the legal wake cycle from the
 * configuration (schedDepth) and the producer's observed issue and
 * completion cycles; it deliberately does not read the core's own
 * wakeCycle field, so a core that wakes consumers too early is caught
 * even when its bookkeeping is self-consistent (the fuzz tier injects
 * exactly this bug to prove it).
 *
 * Header-only on purpose: OooCore and the simulate() facade (both in
 * xps_sim) call into it directly while the rest of the checking
 * subsystem (src/check) links against xps_sim, which keeps the
 * library dependency graph acyclic.
 */

#ifndef XPS_CHECK_INVARIANT_CHECKER_HH
#define XPS_CHECK_INVARIANT_CHECKER_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "workload/micro_op.hh"

/*
 * OooCore calls the on*() hooks from its hottest loops behind an
 * `if (checker_)` that is false in every production run. Keeping the
 * bodies out of line makes the disabled path cost a single predicted
 * branch instead of the register pressure and icache footprint the
 * inlined checks would add to doIssue()/doCommit()/doDispatch().
 */
#if defined(__GNUC__)
#define XPS_CHECK_OUTLINE __attribute__((noinline, cold))
#else
#define XPS_CHECK_OUTLINE
#endif

namespace xps
{

/** Shadow-state invariant checker attached to one OooCore. */
class InvariantChecker
{
  public:
    /**
     * @param cfg the configuration the core was built from (limits
     *        are re-derived from it, not taken from the core)
     * @param fail_fast panic on the first violation (XPS_CHECK=1
     *        production mode); otherwise accumulate for inspection
     */
    explicit InvariantChecker(const CoreConfig &cfg,
                              bool fail_fast = false,
                              const Technology &tech =
                                  Technology::defaultTech())
        : cfg_(cfg), failFast_(fail_fast),
          awaken_(static_cast<uint64_t>(cfg.awakenLatency())),
          feStages_(static_cast<uint64_t>(cfg.frontEndStages(tech))),
          mulUnits_(std::max(1u, cfg.width / 3))
    {
        ring_.assign(std::bit_ceil<uint64_t>(cfg.robSize) * 2, Rec{});
        ringMask_ = ring_.size() - 1;
    }

    /** The core calls this when a run starts (state is rebuilt). */
    XPS_CHECK_OUTLINE void
    onRunStart()
    {
        std::fill(ring_.begin(), ring_.end(), Rec{});
        nextCommitSeq_ = 0;
        curCycle_ = UINT64_MAX;
        commits_ = issues_ = dispatches_ = fetches_ = 0;
        aluUsed_ = mulUsed_ = memUsed_ = 0;
    }

    XPS_CHECK_OUTLINE void
    onFetch(uint64_t cycle)
    {
        roll(cycle);
        if (++fetches_ > cfg_.width)
            report(cycle, "fetched %u ops in one cycle (width %u)",
                   fetches_, cfg_.width);
    }

    XPS_CHECK_OUTLINE void
    onDispatch(uint64_t seq, const MicroOp &op, uint64_t cycle,
               uint64_t fetch_cycle)
    {
        roll(cycle);
        if (++dispatches_ > cfg_.width)
            report(cycle, "dispatched %u ops in one cycle (width %u)",
                   dispatches_, cfg_.width);
        if (cycle < fetch_cycle + feStages_)
            report(cycle,
                   "seq %llu dispatched %llu cycles after fetch "
                   "(front end is %llu stages)",
                   (unsigned long long)seq,
                   (unsigned long long)(cycle - fetch_cycle),
                   (unsigned long long)feStages_);
        Rec &r = ring_[seq & ringMask_];
        r = Rec{};
        r.seq = seq;
        r.live = true;
        r.srcDist[0] = op.numSrcs > 0 ? op.srcDist[0] : 0;
        r.srcDist[1] = op.numSrcs > 1 ? op.srcDist[1] : 0;
    }

    XPS_CHECK_OUTLINE void
    onIssue(uint64_t seq, const MicroOp &op, uint64_t cycle,
            uint64_t complete_cycle)
    {
        roll(cycle);
        if (++issues_ > cfg_.width)
            report(cycle, "issued %u ops in one cycle (width %u)",
                   issues_, cfg_.width);
        switch (op.cls) {
          case OpClass::IntAlu:
          case OpClass::CondBranch:
          case OpClass::Jump:
            if (++aluUsed_ > cfg_.width)
                report(cycle, "ALU ops over the %u-unit limit",
                       cfg_.width);
            break;
          case OpClass::IntMul:
            if (++mulUsed_ > mulUnits_)
                report(cycle, "multiplies over the %u-unit limit",
                       mulUnits_);
            break;
          case OpClass::Load:
          case OpClass::Store:
            if (++memUsed_ > kMemPorts)
                report(cycle, "memory ops over the %u-port limit",
                       kMemPorts);
            break;
        }

        Rec &r = ring_[seq & ringMask_];
        if (!r.live || r.seq != seq) {
            report(cycle, "seq %llu issued without a dispatch record",
                   (unsigned long long)seq);
            return;
        }
        if (r.issued)
            report(cycle, "seq %llu issued twice",
                   (unsigned long long)seq);
        if (complete_cycle <= cycle)
            report(cycle, "seq %llu completes at its issue cycle",
                   (unsigned long long)seq);
        r.issued = true;
        r.issueCycle = cycle;
        r.completeCycle = complete_cycle;

        // Producer wake check: recompute, from the configuration and
        // the producer's observed issue, the earliest cycle its
        // result can reach a dependent.
        for (uint32_t dist : r.srcDist) {
            if (dist == 0 || dist > seq)
                continue;
            const uint64_t prod = seq - dist;
            const Rec &p = ring_[prod & ringMask_];
            if (!p.live || p.seq != prod)
                continue; // record recycled: producer long retired
            if (p.committed) {
                if (cycle < p.commitCycle)
                    report(cycle,
                           "seq %llu issued before producer seq %llu "
                           "committed (cycle %llu)",
                           (unsigned long long)seq,
                           (unsigned long long)prod,
                           (unsigned long long)p.commitCycle);
                continue;
            }
            if (!p.issued) {
                report(cycle,
                       "seq %llu issued before producer seq %llu",
                       (unsigned long long)seq,
                       (unsigned long long)prod);
                continue;
            }
            const uint64_t wake =
                std::max(p.completeCycle,
                         p.issueCycle + 1 + awaken_);
            if (cycle < wake)
                report(cycle,
                       "seq %llu issued at %llu, before producer seq "
                       "%llu wakes dependents at %llu (issue %llu, "
                       "complete %llu, awaken %llu)",
                       (unsigned long long)seq,
                       (unsigned long long)cycle,
                       (unsigned long long)prod,
                       (unsigned long long)wake,
                       (unsigned long long)p.issueCycle,
                       (unsigned long long)p.completeCycle,
                       (unsigned long long)awaken_);
        }
    }

    XPS_CHECK_OUTLINE void
    onCommit(uint64_t seq, uint64_t cycle)
    {
        roll(cycle);
        if (++commits_ > cfg_.width)
            report(cycle, "committed %u ops in one cycle (width %u)",
                   commits_, cfg_.width);
        if (seq != nextCommitSeq_)
            report(cycle,
                   "commit out of program order: seq %llu after %llu",
                   (unsigned long long)seq,
                   (unsigned long long)nextCommitSeq_);
        nextCommitSeq_ = seq + 1;
        Rec &r = ring_[seq & ringMask_];
        if (!r.live || r.seq != seq) {
            report(cycle, "seq %llu committed without a record",
                   (unsigned long long)seq);
            return;
        }
        if (!r.issued)
            report(cycle, "seq %llu committed before issuing",
                   (unsigned long long)seq);
        else if (cycle < r.completeCycle)
            report(cycle,
                   "seq %llu committed at %llu before completing "
                   "at %llu",
                   (unsigned long long)seq, (unsigned long long)cycle,
                   (unsigned long long)r.completeCycle);
        r.committed = true;
        r.commitCycle = cycle;
    }

    XPS_CHECK_OUTLINE void
    onCycleEnd(uint64_t cycle, uint64_t rob_occ, uint32_t iq_occ,
               uint32_t lsq_occ)
    {
        roll(cycle);
        if (rob_occ > cfg_.robSize)
            report(cycle, "ROB occupancy %llu exceeds capacity %u",
                   (unsigned long long)rob_occ, cfg_.robSize);
        if (iq_occ > cfg_.iqSize)
            report(cycle, "IQ occupancy %u exceeds capacity %u",
                   iq_occ, cfg_.iqSize);
        if (lsq_occ > cfg_.lsqSize)
            report(cycle, "LSQ occupancy %u exceeds capacity %u",
                   lsq_occ, cfg_.lsqSize);
    }

    bool ok() const { return violations_.empty(); }
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }
    /** All violations joined for one-line reporting. */
    std::string
    summary() const
    {
        std::string out;
        for (const std::string &v : violations_) {
            if (!out.empty())
                out += "; ";
            out += v;
        }
        return out;
    }

  private:
    /** Cache ports, mirroring OooCore::kMemPorts (Table-1 ports). */
    static constexpr uint32_t kMemPorts = 2;
    /** Keep the first violations only; one bug repeats per cycle. */
    static constexpr size_t kMaxViolations = 32;

    /** Shadow per-instruction record (ring indexed by seq). */
    struct Rec
    {
        uint64_t seq = 0;
        uint64_t issueCycle = 0;
        uint64_t completeCycle = 0;
        uint64_t commitCycle = 0;
        uint32_t srcDist[2] = {0, 0};
        bool live = false;
        bool issued = false;
        bool committed = false;
    };

    /** Reset the per-cycle counters when the cycle advances. */
    void
    roll(uint64_t cycle)
    {
        if (cycle == curCycle_)
            return;
        curCycle_ = cycle;
        commits_ = issues_ = dispatches_ = fetches_ = 0;
        aluUsed_ = mulUsed_ = memUsed_ = 0;
    }

    template <typename... Args>
    void
    report(uint64_t cycle, const char *fmt, Args... args)
    {
        std::string msg = "cycle " + std::to_string(cycle) + ": " +
                          detail::format(fmt, args...);
        if (failFast_)
            panic("invariant violation (config %s): %s",
                  cfg_.name.c_str(), msg.c_str());
        if (violations_.size() < kMaxViolations)
            violations_.push_back(std::move(msg));
    }

    CoreConfig cfg_;
    bool failFast_;
    uint64_t awaken_;
    uint64_t feStages_;
    uint32_t mulUnits_;

    std::vector<Rec> ring_;
    uint64_t ringMask_ = 0;
    uint64_t nextCommitSeq_ = 0;

    uint64_t curCycle_ = UINT64_MAX;
    uint32_t commits_ = 0, issues_ = 0, dispatches_ = 0, fetches_ = 0;
    uint32_t aluUsed_ = 0, mulUsed_ = 0, memUsed_ = 0;

    std::vector<std::string> violations_;
};

/** XPS_CHECK=1: attach a fail-fast checker to every simulate() run. */
inline bool
invariantCheckingForced()
{
    static const bool on = envInt("XPS_CHECK", 0) != 0;
    return on;
}

} // namespace xps

#endif // XPS_CHECK_INVARIANT_CHECKER_HH
