#include "check/propgen.hh"

#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "util/logging.hh"

namespace xps
{

namespace
{

constexpr const char *kHeader = "xps-prop-case v1";

/**
 * One serializable/shrinkable numeric field of a PropCase. Integral
 * fields round-trip through double, which is exact for every value in
 * range here (all well below 2^53).
 */
struct NumField
{
    const char *key;
    bool isFloat;
    bool isConfig; ///< legality gate: checkFits vs. profileValid
    double (*get)(const PropCase &);
    void (*set)(PropCase &, double);
};

#define XPS_FIELD(key, isFloat, isConfig, expr)                       \
    NumField                                                          \
    {                                                                 \
        key, isFloat, isConfig,                                       \
            [](const PropCase &c) {                                   \
                return static_cast<double>(c.expr);                   \
            },                                                        \
            [](PropCase &c, double v) {                               \
                c.expr = static_cast<decltype(c.expr)>(v);            \
            }                                                         \
    }

const std::vector<NumField> &
numFields()
{
    static const std::vector<NumField> fields = {
        XPS_FIELD("measure", false, false, measureInstrs),
        XPS_FIELD("warmup", false, false, warmupInstrs),
        XPS_FIELD("stream", false, false, streamId),

        XPS_FIELD("cfg.clock_ns", true, true, config.clockNs),
        XPS_FIELD("cfg.width", false, true, config.width),
        XPS_FIELD("cfg.rob", false, true, config.robSize),
        XPS_FIELD("cfg.iq", false, true, config.iqSize),
        XPS_FIELD("cfg.lsq", false, true, config.lsqSize),
        XPS_FIELD("cfg.sched_depth", false, true, config.schedDepth),
        XPS_FIELD("cfg.lsq_depth", false, true, config.lsqDepth),
        XPS_FIELD("cfg.l1_sets", false, true, config.l1Sets),
        XPS_FIELD("cfg.l1_assoc", false, true, config.l1Assoc),
        XPS_FIELD("cfg.l1_line", false, true, config.l1LineBytes),
        XPS_FIELD("cfg.l1_cycles", false, true, config.l1Cycles),
        XPS_FIELD("cfg.l2_sets", false, true, config.l2Sets),
        XPS_FIELD("cfg.l2_assoc", false, true, config.l2Assoc),
        XPS_FIELD("cfg.l2_line", false, true, config.l2LineBytes),
        XPS_FIELD("cfg.l2_cycles", false, true, config.l2Cycles),

        XPS_FIELD("prof.seed", false, false, profile.seed),
        XPS_FIELD("prof.frac_load", true, false, profile.fracLoad),
        XPS_FIELD("prof.frac_store", true, false, profile.fracStore),
        XPS_FIELD("prof.frac_cond_branch", true, false,
                  profile.fracCondBranch),
        XPS_FIELD("prof.frac_jump", true, false, profile.fracJump),
        XPS_FIELD("prof.frac_mul", true, false, profile.fracMul),
        XPS_FIELD("prof.mean_dep_distance", true, false,
                  profile.meanDepDistance),
        XPS_FIELD("prof.frac_two_src", true, false, profile.fracTwoSrc),
        XPS_FIELD("prof.load_chase_prob", true, false,
                  profile.loadChaseProb),
        XPS_FIELD("prof.num_branch_sites", false, false,
                  profile.numBranchSites),
        XPS_FIELD("prof.frac_biased_sites", true, false,
                  profile.fracBiasedSites),
        XPS_FIELD("prof.biased_taken_prob", true, false,
                  profile.biasedTakenProb),
        XPS_FIELD("prof.frac_loop_sites", true, false,
                  profile.fracLoopSites),
        XPS_FIELD("prof.mean_loop_trip", true, false,
                  profile.meanLoopTrip),
        XPS_FIELD("prof.frac_pattern_sites", true, false,
                  profile.fracPatternSites),
        XPS_FIELD("prof.site_zipf_s", true, false, profile.siteZipfS),
        XPS_FIELD("prof.working_set_bytes", false, false,
                  profile.workingSetBytes),
        XPS_FIELD("prof.heap_zipf_s", true, false, profile.heapZipfS),
        XPS_FIELD("prof.frac_hot", true, false, profile.fracHot),
        XPS_FIELD("prof.hot_region_bytes", false, false,
                  profile.hotRegionBytes),
        XPS_FIELD("prof.frac_stream", true, false, profile.fracStream),
        XPS_FIELD("prof.num_streams", false, false, profile.numStreams),
        XPS_FIELD("prof.stream_stride_bytes", false, false,
                  profile.streamStrideBytes),
        XPS_FIELD("prof.stream_window_bytes", false, false,
                  profile.streamWindowBytes),
    };
    return fields;
}

#undef XPS_FIELD

/**
 * Canonical shrink target: Table-3 config, default profile, minimal
 * run budget. Every shrink candidate moves one field toward this.
 */
PropCase
baselineCase()
{
    PropCase b;
    b.config = CoreConfig::initial();
    b.profile = WorkloadProfile{};
    b.profile.name = "baseline";
    b.streamId = 0;
    b.measureInstrs = 500;
    b.warmupInstrs = 0;
    return b;
}

/** Fields the cache model additionally requires to be powers of
 *  two (sets and line sizes; checkFits alone does not enforce it). */
bool
requiresPow2(const char *key)
{
    for (const char *k : {"cfg.l1_sets", "cfg.l1_line", "cfg.l2_sets",
                          "cfg.l2_line"}) {
        if (std::strcmp(key, k) == 0)
            return true;
    }
    return false;
}

bool
candidateLegal(const PropCase &c, const NumField &field,
               const UnitTiming &timing)
{
    if (field.isConfig) {
        if (!std::has_single_bit(c.config.l1Sets) ||
            !std::has_single_bit<uint64_t>(c.config.l1LineBytes) ||
            !std::has_single_bit(c.config.l2Sets) ||
            !std::has_single_bit<uint64_t>(c.config.l2LineBytes))
            return false;
        return c.config.checkFits(timing).empty();
    }
    return profileValid(c.profile) && c.measureInstrs >= 1;
}

std::string
formatValue(const NumField &field, double v)
{
    char buf[64];
    if (field.isFloat)
        std::snprintf(buf, sizeof(buf), "%a", v);
    else
        std::snprintf(buf, sizeof(buf), "%" PRIu64,
                      static_cast<uint64_t>(v));
    return buf;
}

} // namespace

bool
profileValid(const WorkloadProfile &p)
{
    const double mix = p.fracLoad + p.fracStore + p.fracCondBranch +
                       p.fracJump + p.fracMul;
    if (mix > 1.0 + 1e-9)
        return false;
    for (double f : {p.fracLoad, p.fracStore, p.fracCondBranch,
                     p.fracJump, p.fracMul, p.fracTwoSrc,
                     p.loadChaseProb, p.fracHot, p.fracStream}) {
        if (f < 0.0 || f > 1.0)
            return false;
    }
    if (p.fracBiasedSites + p.fracLoopSites + p.fracPatternSites >
        1.0 + 1e-9)
        return false;
    if (p.fracHot + p.fracStream > 1.0 + 1e-9)
        return false;
    if (p.meanDepDistance < 1.0)
        return false;
    if (p.numBranchSites == 0 || p.numStreams == 0)
        return false;
    if (p.workingSetBytes < 64 || p.hotRegionBytes < 64)
        return false;
    return true;
}

std::string
PropCase::serialize() const
{
    std::ostringstream out;
    out << kHeader << "\n";
    out << "config.name=" << config.name << "\n";
    out << "profile.name=" << profile.name << "\n";
    for (const NumField &field : numFields())
        out << field.key << "=" << formatValue(field, field.get(*this))
            << "\n";
    out << "end\n";
    return out.str();
}

PropCase
PropCase::parse(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != kHeader)
        fatal("prop case: missing '%s' header", kHeader);

    std::map<std::string, std::string> kv;
    bool sawEnd = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line == "end") {
            sawEnd = true;
            break;
        }
        const size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("prop case: malformed line '%s'", line.c_str());
        kv[line.substr(0, eq)] = line.substr(eq + 1);
    }
    if (!sawEnd)
        fatal("prop case: truncated (no 'end' line)");

    PropCase c;
    auto take = [&kv](const char *key) {
        auto it = kv.find(key);
        if (it == kv.end())
            fatal("prop case: missing key '%s'", key);
        std::string v = it->second;
        kv.erase(it);
        return v;
    };
    c.config.name = take("config.name");
    c.profile.name = take("profile.name");
    for (const NumField &field : numFields()) {
        const std::string v = take(field.key);
        char *endp = nullptr;
        const double parsed = field.isFloat
            ? std::strtod(v.c_str(), &endp)
            : static_cast<double>(std::strtoull(v.c_str(), &endp, 10));
        if (endp == v.c_str() || *endp != '\0')
            fatal("prop case: bad value '%s' for '%s'", v.c_str(),
                  field.key);
        field.set(c, parsed);
    }
    if (!kv.empty())
        fatal("prop case: unknown key '%s'", kv.begin()->first.c_str());
    return c;
}

PropGen::PropGen(uint64_t seed)
    : timing_(), space_(timing_), rng_(seed)
{
}

WorkloadProfile
PropGen::randomProfile()
{
    WorkloadProfile p;
    // Keep the seed below 2^53: every numeric field round-trips
    // through double in the serialization/shrinking field table.
    p.seed = (rng_.next() >> 12) | 1;
    p.fracLoad = rng_.uniform(0.05, 0.35);
    p.fracStore = rng_.uniform(0.02, 0.20);
    p.fracCondBranch = rng_.uniform(0.05, 0.25);
    p.fracJump = rng_.uniform(0.0, 0.06);
    p.fracMul = rng_.uniform(0.0, 0.08);

    p.meanDepDistance = rng_.uniform(1.5, 12.0);
    p.fracTwoSrc = rng_.uniform(0.10, 0.60);
    p.loadChaseProb = rng_.uniform(0.0, 0.50);

    p.numBranchSites =
        1u << static_cast<uint32_t>(rng_.range(6, 10));
    p.fracBiasedSites = rng_.uniform(0.10, 0.70);
    p.biasedTakenProb = rng_.uniform(0.80, 0.99);
    p.fracLoopSites =
        rng_.uniform(0.0, std::min(0.40, 1.0 - p.fracBiasedSites));
    p.fracPatternSites = rng_.uniform(
        0.0,
        std::min(0.20, 1.0 - p.fracBiasedSites - p.fracLoopSites));
    p.meanLoopTrip = rng_.uniform(2.0, 64.0);
    p.siteZipfS = rng_.uniform(0.30, 1.20);

    p.workingSetBytes = 1ULL << rng_.range(14, 24);
    p.heapZipfS = rng_.uniform(0.20, 1.10);
    p.fracHot = rng_.uniform(0.0, 0.60);
    p.hotRegionBytes = 1ULL << rng_.range(7, 14);
    p.fracStream =
        rng_.uniform(0.0, std::min(0.50, 0.95 - p.fracHot));
    p.numStreams = static_cast<uint32_t>(rng_.range(1, 8));
    p.streamStrideBytes =
        1u << static_cast<uint32_t>(rng_.range(2, 6));
    p.streamWindowBytes = 1ULL << rng_.range(12, 20);
    return p;
}

PropCase
PropGen::next()
{
    PropCase c;
    c.config = space_.randomConfig(rng_);
    c.profile = randomProfile();
    c.profile.name = "prop-" + std::to_string(count_);
    c.config.name = c.profile.name;
    c.streamId = rng_.below(4);
    ++count_;
    c.profile.validate();
    c.config.validate(timing_);
    return c;
}

uint64_t
shrinkDistance(const PropCase &c)
{
    static const PropCase base = baselineCase();
    uint64_t distance = 0;
    for (const NumField &field : numFields()) {
        if (field.get(c) != field.get(base))
            ++distance;
    }
    return distance;
}

PropCase
shrinkCase(const PropCase &failing, const PropProperty &passes,
           const UnitTiming &timing, uint64_t max_evals)
{
    static const PropCase base = baselineCase();
    PropCase cur = failing;
    uint64_t evals = 0;
    bool improved = true;
    while (improved && evals < max_evals) {
        improved = false;
        for (const NumField &field : numFields()) {
            const double v = field.get(cur);
            const double b = field.get(base);
            if (v == b)
                continue;
            // Try the full jump to baseline first, then the midpoint
            // (integral fields round toward the current value so the
            // midpoint is always a genuine move when distinct).
            double candidates[2] = {b, 0.0};
            int n = 1;
            double mid;
            if (requiresPow2(field.key)) {
                // Halve in log space so the midpoint stays a power
                // of two (the cache model accepts nothing else).
                const int lv = std::bit_width(
                                   static_cast<uint64_t>(v)) - 1;
                const int lb = std::bit_width(
                                   static_cast<uint64_t>(b)) - 1;
                mid = static_cast<double>(
                    1ULL << (lv + (lb - lv) / 2));
            } else if (field.isFloat) {
                mid = (v + b) / 2.0;
            } else {
                mid = v + std::trunc((b - v) / 2.0);
            }
            if (mid != v && mid != b)
                candidates[n++] = mid;
            for (int i = 0; i < n; ++i) {
                PropCase cand = cur;
                field.set(cand, candidates[i]);
                if (!candidateLegal(cand, field, timing))
                    continue;
                if (++evals > max_evals)
                    return cur;
                if (!passes(cand)) {
                    cur = cand;
                    improved = true;
                    break;
                }
            }
            if (improved)
                break;
        }
    }
    return cur;
}

} // namespace xps
