/**
 * @file
 * The differential oracle: a deliberately simple in-order scalar core
 * that replays the same micro-op trace as OooCore and produces two
 * kinds of ground truth (DESIGN.md §8):
 *
 *  1. **Exact event counts.** Because OooCore fetches in trace order,
 *     trains the identical tournament predictor at fetch, and commits
 *     exactly `measure` instructions in program order, the committed
 *     window is precisely trace positions [warmup, warmup + measure).
 *     An independent in-order walk over those positions therefore
 *     yields instruction / load / store / conditional-branch /
 *     mispredict counts the out-of-order core must match *exactly* —
 *     any drift means the commit-window accounting is broken.
 *
 *  2. **An IPC lower bound.** The reference core is fully serialized:
 *     every instruction is charged one dispatch cycle plus the larger
 *     of its full execution latency (loads probe a private copy of
 *     the same cache hierarchy, in program order) and the scheduler
 *     wakeup loop, and every mispredicted branch refills the whole
 *     front end. No two latencies ever overlap, so a correct
 *     out-of-order core of the same configuration can never be slower
 *     — `ooo.cycles <= ref.cycles` is asserted by the differential
 *     comparator across the fuzzed configuration space.
 *
 * The implementation intentionally shares no code with OooCore beyond
 * the cache/predictor component models; its per-op latencies restate
 * the Table-2 constants locally so a latency bug in the core cannot
 * cancel out of the comparison.
 */

#ifndef XPS_CHECK_REFERENCE_CORE_HH
#define XPS_CHECK_REFERENCE_CORE_HH

#include <cstdint>

#include "sim/cache.hh"
#include "sim/config.hh"
#include "workload/branch_predictor.hh"

namespace xps
{

class TraceCursor;

/** Ground truth produced by one reference replay. */
struct RefStats
{
    uint64_t instructions = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t condBranches = 0;
    uint64_t mispredicts = 0;
    /** Fully serialized cycle count (upper bound on any correct
     *  pipelined execution of the same window). */
    uint64_t cycles = 0;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0 :
            static_cast<double>(instructions) /
            static_cast<double>(cycles);
    }
};

/** In-order scalar oracle for one configuration. */
class ReferenceCore
{
  public:
    explicit ReferenceCore(const CoreConfig &cfg,
                           const Technology &tech =
                               Technology::defaultTech());

    /**
     * Replay `warmup` functional-warmup ops (identical to OooCore's
     * warmup: cache and predictor training only) followed by
     * `measure` measured ops. The cursor must be positioned at the
     * start of the stream.
     */
    RefStats run(TraceCursor &trace, uint64_t measure,
                 uint64_t warmup);

  private:
    CoreConfig cfg_;
    MemoryHierarchy hierarchy_;
    BranchPredictor predictor_;
    uint64_t awaken_;
    uint64_t feStages_;
};

} // namespace xps

#endif // XPS_CHECK_REFERENCE_CORE_HH
