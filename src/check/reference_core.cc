#include "check/reference_core.hh"

#include <algorithm>

#include "workload/trace.hh"

namespace xps
{

namespace
{
// Table-2 execution latencies, restated independently of OooCore so
// the oracle cannot inherit a bug from the model under test.
constexpr uint64_t kAgenCycles = 1;
constexpr uint64_t kMulLatency = 4;
} // namespace

ReferenceCore::ReferenceCore(const CoreConfig &cfg,
                             const Technology &tech)
    : cfg_(cfg),
      hierarchy_(cfg.l1Sets, cfg.l1Assoc, cfg.l1LineBytes,
                 cfg.l1Cycles, cfg.l2Sets, cfg.l2Assoc,
                 cfg.l2LineBytes, cfg.l2Cycles, cfg.memCycles(tech)),
      predictor_(),
      awaken_(static_cast<uint64_t>(cfg.awakenLatency())),
      feStages_(static_cast<uint64_t>(cfg.frontEndStages(tech)))
{
}

RefStats
ReferenceCore::run(TraceCursor &trace, uint64_t measure,
                   uint64_t warmup)
{
    hierarchy_.reset();
    predictor_.reset();

    // Functional warmup, byte-for-byte the same training OooCore
    // performs: addresses through the hierarchy, outcomes through the
    // predictor, no timing.
    for (uint64_t i = 0; i < warmup; ++i) {
        const MicroOp &op = trace.next();
        switch (op.cls) {
          case OpClass::Load:
            hierarchy_.loadLatency(op.addr);
            break;
          case OpClass::Store:
            hierarchy_.storeTouch(op.addr);
            break;
          case OpClass::CondBranch:
            predictor_.predict(op.pc, op.taken);
            break;
          default:
            break;
        }
    }

    RefStats out;
    out.cycles = feStages_; // initial front-end fill
    for (uint64_t i = 0; i < measure; ++i) {
        const MicroOp &op = trace.next();
        ++out.instructions;
        uint64_t lat = 1;
        switch (op.cls) {
          case OpClass::IntAlu:
          case OpClass::Jump:
            break;
          case OpClass::IntMul:
            lat = kMulLatency;
            break;
          case OpClass::Load:
            ++out.loads;
            lat = kAgenCycles + static_cast<uint64_t>(
                hierarchy_.loadLatency(op.addr));
            break;
          case OpClass::Store:
            ++out.stores;
            lat = kAgenCycles;
            hierarchy_.storeTouch(op.addr);
            break;
          case OpClass::CondBranch:
            ++out.condBranches;
            if (!predictor_.predict(op.pc, op.taken)) {
                ++out.mispredicts;
                // Squash and refill the whole front end.
                out.cycles += feStages_ + 1;
            }
            break;
        }
        // One dispatch cycle plus the serialized execution latency;
        // a pipelined scheduler cannot deliver a result to the next
        // instruction faster than its wakeup loop.
        out.cycles += 1 + std::max(lat, 1 + awaken_);
    }
    return out;
}

} // namespace xps
