#include "check/differential.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "check/invariant_checker.hh"
#include "explore/annealer.hh"
#include "explore/predictor.hh"
#include "sim/batch.hh"
#include "sim/ooo_core.hh"
#include "util/logging.hh"
#include "workload/characteristics.hh"
#include "workload/trace.hh"

namespace xps
{

namespace
{

void
compareCount(std::ostringstream &out, const char *what, uint64_t ooo,
             uint64_t ref)
{
    if (ooo != ref)
        out << what << ": core " << ooo << " != oracle " << ref
            << "; ";
}

/** Batched-vs-scalar bit-identity over every SimStats field. */
void
compareBatchedStats(std::ostringstream &out, const SimStats &batched,
                    const SimStats &scalar)
{
    compareCount(out, "batched instructions", batched.instructions,
                 scalar.instructions);
    compareCount(out, "batched cycles", batched.cycles,
                 scalar.cycles);
    compareCount(out, "batched condBranches", batched.condBranches,
                 scalar.condBranches);
    compareCount(out, "batched mispredicts", batched.mispredicts,
                 scalar.mispredicts);
    compareCount(out, "batched loads", batched.loads, scalar.loads);
    compareCount(out, "batched stores", batched.stores,
                 scalar.stores);
    compareCount(out, "batched l1Hits", batched.l1Hits,
                 scalar.l1Hits);
    compareCount(out, "batched l1Misses", batched.l1Misses,
                 scalar.l1Misses);
    compareCount(out, "batched l2Hits", batched.l2Hits,
                 scalar.l2Hits);
    compareCount(out, "batched l2Misses", batched.l2Misses,
                 scalar.l2Misses);
    compareCount(out, "batched robOccupancySum",
                 batched.robOccupancySum, scalar.robOccupancySum);
    if (batched.clockNs != scalar.clockNs)
        out << "batched clockNs: " << batched.clockNs
            << " != " << scalar.clockNs << "; ";
}

DiffResult
runDifferentialCaseImpl(const PropCase &c, bool batched)
{
    // A private buffer, not sharedTrace(): fuzz cases are one-shot
    // and must not pin thousands of traces in the global registry.
    const uint64_t ops =
        c.measureInstrs + c.warmupInstrs + kTraceSlackOps;
    auto buffer = std::make_shared<const TraceBuffer>(
        c.profile, c.streamId, ops);

    DiffResult r;
    InvariantChecker checker(c.config, /*fail_fast=*/false);
    {
        OooCore core(c.config);
        core.setChecker(&checker);
        TraceCursor cursor(buffer);
        r.ooo = core.run(cursor, c.measureInstrs, c.warmupInstrs);
    }
    {
        ReferenceCore oracle(c.config);
        TraceCursor cursor(buffer);
        r.ref = oracle.run(cursor, c.measureInstrs, c.warmupInstrs);
    }
    r.invariantViolations = checker.violations();

    std::ostringstream fail;
    if (batched) {
        BatchOptions bopts;
        bopts.measureInstrs = c.measureInstrs;
        bopts.warmupInstrs = c.warmupInstrs;
        BatchSimulator sim(buffer, bopts);
        const std::vector<SimStats> stats = sim.evaluate({c.config});
        compareBatchedStats(fail, stats[0], r.ooo);
    }
    if (!checker.ok())
        fail << checker.violations().size()
             << " invariant violation(s): " << checker.summary()
             << "; ";
    compareCount(fail, "instructions", r.ooo.instructions,
                 r.ref.instructions);
    compareCount(fail, "loads", r.ooo.loads, r.ref.loads);
    compareCount(fail, "stores", r.ooo.stores, r.ref.stores);
    compareCount(fail, "condBranches", r.ooo.condBranches,
                 r.ref.condBranches);
    compareCount(fail, "mispredicts", r.ooo.mispredicts,
                 r.ref.mispredicts);
    if (r.ooo.cycles > r.ref.cycles)
        fail << "IPC domination: core took " << r.ooo.cycles
             << " cycles, serialized oracle only " << r.ref.cycles
             << "; ";

    r.failure = fail.str();
    r.passed = r.failure.empty();
    return r;
}

} // namespace

DiffResult
runDifferentialCase(const PropCase &c)
{
    return runDifferentialCaseImpl(c, /*batched=*/false);
}

DiffResult
runDifferentialCaseBatched(const PropCase &c)
{
    return runDifferentialCaseImpl(c, /*batched=*/true);
}

namespace
{

/** One fuzz campaign over any case property: generate, check, shrink
 *  failures to a local minimum, serialize reproductions as
 *  `<prefix>seed<seed>-iter<i>.case`. */
FuzzReport
runFuzzCampaign(uint64_t iters, uint64_t seed,
                const std::string &corpus_dir, const char *prefix,
                const std::function<std::pair<bool, std::string>(
                    const PropCase &)> &check)
{
    // Shrinking re-evaluates the property hundreds of times; a few
    // shrunk reproductions of the same campaign are plenty.
    constexpr uint64_t kMaxShrunkFailures = 4;

    PropGen gen(seed);
    FuzzReport rep;
    const PropProperty passes = [&check](const PropCase &pc) {
        return check(pc).first;
    };
    for (uint64_t i = 0; i < iters; ++i) {
        const PropCase c = gen.next();
        ++rep.iterations;
        const auto [passed, failure] = check(c);
        if (passed)
            continue;

        const PropCase minimal = shrinkCase(c, passes, gen.timing());
        const auto [mp, mfailure] = check(minimal);
        const std::string &msg = mfailure.empty() ? failure : mfailure;
        ++rep.failures;
        if (rep.failures == 1) {
            rep.firstFailure = minimal;
            rep.firstFailureMessage = msg;
        }
        warn("fuzz case %llu failed (%s); shrunk %llu -> %llu "
             "fields from baseline",
             static_cast<unsigned long long>(i), msg.c_str(),
             static_cast<unsigned long long>(shrinkDistance(c)),
             static_cast<unsigned long long>(shrinkDistance(minimal)));

        if (!corpus_dir.empty()) {
            std::filesystem::create_directories(corpus_dir);
            std::ostringstream name;
            name << prefix << "seed" << seed << "-iter" << i
                 << ".case";
            const std::string path =
                (std::filesystem::path(corpus_dir) / name.str())
                    .string();
            std::ofstream out(path);
            if (!out)
                fatal("fuzz: cannot write corpus file %s",
                      path.c_str());
            out << minimal.serialize();
            rep.corpusFiles.push_back(path);
        }
        if (rep.failures >= kMaxShrunkFailures)
            break;
    }
    return rep;
}

} // namespace

FuzzReport
fuzzDifferential(uint64_t iters, uint64_t seed,
                 const std::string &corpus_dir, bool batched)
{
    return runFuzzCampaign(
        iters, seed, corpus_dir, "fail-",
        [batched](const PropCase &pc) {
            DiffResult r = runDifferentialCaseImpl(pc, batched);
            return std::make_pair(r.passed, std::move(r.failure));
        });
}

SurrogateChainResult
runSurrogateChainCase(const PropCase &c)
{
    const uint64_t ops =
        c.measureInstrs + c.warmupInstrs + kTraceSlackOps;
    auto buffer = std::make_shared<const TraceBuffer>(
        c.profile, c.streamId, ops);

    const UnitTiming timing;
    const SearchSpace space(timing);
    AnnealParams params;
    params.iterations = 96;
    params.seed = configFingerprint(c.config) ^
                  (c.streamId * 0x9e3779b97f4a7c15ULL);

    BatchOptions bopts;
    bopts.measureInstrs = c.measureInstrs;
    bopts.warmupInstrs = c.warmupInstrs;

    SurrogateChainResult r;

    // Unscreened chain: the plain scalar walk (memoized full-fidelity
    // evaluations through a BatchSimulator, bit-identical to
    // simulate()).
    {
        BatchSimulator sim(buffer, bopts);
        const Annealer base(
            space,
            [&](const CoreConfig &cfg) {
                return sim.evaluate({cfg})[0].ipt();
            },
            params);
        const AnnealResult a = base.run(c.config);
        r.baselineBest = a.best;
        r.baselineScore = a.bestScore;
    }

    // Screened chain: same seed, width-1 frontier, an IpcPredictor
    // pre-screening each proposal. Its own simulator (own memo), so
    // the model trains on exactly the simulations this chain pays
    // for. Every full-fidelity score is recorded by fingerprint — the
    // honesty referee below.
    std::unordered_map<uint64_t, double> confirmed;
    std::vector<std::pair<CoreConfig, double>> vetoed;
    {
        BatchSimulator sim(buffer, bopts);
        const Characteristics chars =
            measureCharacteristics(c.profile, 20000);
        // Arm fast (short chains) but veto only far below the walk:
        // at margin 12 a correct veto's candidate had acceptance
        // probability <= e^-12, so trajectory divergence is
        // negligible even over long campaigns — and the honesty
        // property is margin-independent anyway.
        PredictorOptions popts;
        popts.minObservations = 8;
        popts.vetoMargin = 12.0;
        IpcPredictor pred(popts);
        auto full_eval = [&](const CoreConfig &cfg) {
            const double ipt = sim.evaluate({cfg})[0].ipt();
            pred.observe(IpcPredictor::features(cfg, chars), ipt);
            confirmed[configFingerprint(cfg)] = ipt;
            return ipt;
        };
        Annealer screened(space, full_eval, params);
        screened.setFrontier(
            [&](const std::vector<CoreConfig> &cands,
                const FrontierContext &ctx,
                std::vector<double> &scores,
                std::vector<uint8_t> &full) {
                scores.assign(cands.size(), 0.0);
                full.assign(cands.size(), kScreenPartial);
                for (size_t i = 0; i < cands.size(); ++i) {
                    const std::vector<double> phi =
                        IpcPredictor::features(cands[i], chars);
                    if (pred.confidentlyBelow(phi, ctx.currentScore,
                                              ctx.temp)) {
                        scores[i] = pred.predict(phi);
                        full[i] = kScreenVeto;
                        ++r.vetoes;
                        vetoed.emplace_back(
                            cands[i],
                            ctx.currentScore *
                                (1.0 - popts.vetoMargin * ctx.temp));
                        continue;
                    }
                    scores[i] = full_eval(cands[i]);
                    full[i] = kScreenFull;
                }
            },
            1);
        const AnnealResult s = screened.run(c.config);
        r.screenedBest = s.best;
        r.screenedScore = s.bestScore;
    }

    std::ostringstream fail;
    const auto it = confirmed.find(configFingerprint(r.screenedBest));
    if (it == confirmed.end()) {
        fail << "honesty: adopted config was never simulated at "
                "full fidelity; ";
    } else if (it->second != r.screenedScore) {
        fail << "honesty: adopted score " << r.screenedScore
             << " != its confirmed full-fidelity score " << it->second
             << "; ";
    }
    if (configFingerprint(r.screenedBest) ==
        configFingerprint(r.baselineBest)) {
        if (r.screenedScore != r.baselineScore)
            fail << "trajectory: same adopted config but score "
                 << r.screenedScore << " != unscreened "
                 << r.baselineScore << "; ";
    } else if (r.screenedScore < r.baselineScore) {
        // Attribute the merit loss before calling it a failure: a
        // false veto (the model confidently wrong about a candidate's
        // score) diverts the walk while only ever skipping work — the
        // accepted cost of screening with an undertrained model. Re-
        // simulate every vetoed candidate at full fidelity; the loss
        // is a protocol failure only when every veto's claim holds,
        // because then each rejected candidate's Metropolis
        // acceptance probability was <= e^-vetoMargin and the
        // trajectory should not have moved.
        BatchSimulator audit(buffer, bopts);
        for (const auto &[cfg, thr] : vetoed)
            if (audit.evaluate({cfg})[0].ipt() >= thr)
                ++r.falseVetoes;
        if (r.falseVetoes == 0)
            fail << "merit: screened chain adopted a worse config ("
                 << r.screenedScore << " < unscreened "
                 << r.baselineScore << ") with all " << r.vetoes
                 << " vetoes verified correct; ";
    }
    r.failure = fail.str();
    r.passed = r.failure.empty();
    return r;
}

FuzzReport
fuzzSurrogate(uint64_t iters, uint64_t seed,
              const std::string &corpus_dir)
{
    return runFuzzCampaign(
        iters, seed, corpus_dir, "surr-",
        [](const PropCase &pc) {
            SurrogateChainResult r = runSurrogateChainCase(pc);
            return std::make_pair(r.passed, std::move(r.failure));
        });
}

std::vector<PropCase>
loadCorpus(const std::string &dir, const std::string &prefix)
{
    std::vector<PropCase> cases;
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec))
        return cases;
    std::vector<std::string> paths;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".case" &&
            (prefix.empty() ||
             entry.path().filename().string().rfind(prefix, 0) == 0))
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in)
            fatal("corpus: cannot read %s", path.c_str());
        std::ostringstream text;
        text << in.rdbuf();
        cases.push_back(PropCase::parse(text.str()));
    }
    return cases;
}

} // namespace xps
