#include "check/differential.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/invariant_checker.hh"
#include "sim/batch.hh"
#include "sim/ooo_core.hh"
#include "util/logging.hh"
#include "workload/trace.hh"

namespace xps
{

namespace
{

void
compareCount(std::ostringstream &out, const char *what, uint64_t ooo,
             uint64_t ref)
{
    if (ooo != ref)
        out << what << ": core " << ooo << " != oracle " << ref
            << "; ";
}

/** Batched-vs-scalar bit-identity over every SimStats field. */
void
compareBatchedStats(std::ostringstream &out, const SimStats &batched,
                    const SimStats &scalar)
{
    compareCount(out, "batched instructions", batched.instructions,
                 scalar.instructions);
    compareCount(out, "batched cycles", batched.cycles,
                 scalar.cycles);
    compareCount(out, "batched condBranches", batched.condBranches,
                 scalar.condBranches);
    compareCount(out, "batched mispredicts", batched.mispredicts,
                 scalar.mispredicts);
    compareCount(out, "batched loads", batched.loads, scalar.loads);
    compareCount(out, "batched stores", batched.stores,
                 scalar.stores);
    compareCount(out, "batched l1Hits", batched.l1Hits,
                 scalar.l1Hits);
    compareCount(out, "batched l1Misses", batched.l1Misses,
                 scalar.l1Misses);
    compareCount(out, "batched l2Hits", batched.l2Hits,
                 scalar.l2Hits);
    compareCount(out, "batched l2Misses", batched.l2Misses,
                 scalar.l2Misses);
    compareCount(out, "batched robOccupancySum",
                 batched.robOccupancySum, scalar.robOccupancySum);
    if (batched.clockNs != scalar.clockNs)
        out << "batched clockNs: " << batched.clockNs
            << " != " << scalar.clockNs << "; ";
}

DiffResult
runDifferentialCaseImpl(const PropCase &c, bool batched)
{
    // A private buffer, not sharedTrace(): fuzz cases are one-shot
    // and must not pin thousands of traces in the global registry.
    const uint64_t ops =
        c.measureInstrs + c.warmupInstrs + kTraceSlackOps;
    auto buffer = std::make_shared<const TraceBuffer>(
        c.profile, c.streamId, ops);

    DiffResult r;
    InvariantChecker checker(c.config, /*fail_fast=*/false);
    {
        OooCore core(c.config);
        core.setChecker(&checker);
        TraceCursor cursor(buffer);
        r.ooo = core.run(cursor, c.measureInstrs, c.warmupInstrs);
    }
    {
        ReferenceCore oracle(c.config);
        TraceCursor cursor(buffer);
        r.ref = oracle.run(cursor, c.measureInstrs, c.warmupInstrs);
    }
    r.invariantViolations = checker.violations();

    std::ostringstream fail;
    if (batched) {
        BatchOptions bopts;
        bopts.measureInstrs = c.measureInstrs;
        bopts.warmupInstrs = c.warmupInstrs;
        BatchSimulator sim(buffer, bopts);
        const std::vector<SimStats> stats = sim.evaluate({c.config});
        compareBatchedStats(fail, stats[0], r.ooo);
    }
    if (!checker.ok())
        fail << checker.violations().size()
             << " invariant violation(s): " << checker.summary()
             << "; ";
    compareCount(fail, "instructions", r.ooo.instructions,
                 r.ref.instructions);
    compareCount(fail, "loads", r.ooo.loads, r.ref.loads);
    compareCount(fail, "stores", r.ooo.stores, r.ref.stores);
    compareCount(fail, "condBranches", r.ooo.condBranches,
                 r.ref.condBranches);
    compareCount(fail, "mispredicts", r.ooo.mispredicts,
                 r.ref.mispredicts);
    if (r.ooo.cycles > r.ref.cycles)
        fail << "IPC domination: core took " << r.ooo.cycles
             << " cycles, serialized oracle only " << r.ref.cycles
             << "; ";

    r.failure = fail.str();
    r.passed = r.failure.empty();
    return r;
}

} // namespace

DiffResult
runDifferentialCase(const PropCase &c)
{
    return runDifferentialCaseImpl(c, /*batched=*/false);
}

DiffResult
runDifferentialCaseBatched(const PropCase &c)
{
    return runDifferentialCaseImpl(c, /*batched=*/true);
}

FuzzReport
fuzzDifferential(uint64_t iters, uint64_t seed,
                 const std::string &corpus_dir, bool batched)
{
    // Shrinking re-evaluates the property hundreds of times; a few
    // shrunk reproductions of the same campaign are plenty.
    constexpr uint64_t kMaxShrunkFailures = 4;

    PropGen gen(seed);
    FuzzReport rep;
    const PropProperty passes = [batched](const PropCase &pc) {
        return runDifferentialCaseImpl(pc, batched).passed;
    };
    for (uint64_t i = 0; i < iters; ++i) {
        const PropCase c = gen.next();
        ++rep.iterations;
        const DiffResult r = runDifferentialCaseImpl(c, batched);
        if (r.passed)
            continue;

        const PropCase minimal = shrinkCase(c, passes, gen.timing());
        const DiffResult mr = runDifferentialCaseImpl(minimal, batched);
        const std::string &msg =
            mr.failure.empty() ? r.failure : mr.failure;
        ++rep.failures;
        if (rep.failures == 1) {
            rep.firstFailure = minimal;
            rep.firstFailureMessage = msg;
        }
        warn("fuzz case %llu failed (%s); shrunk %llu -> %llu "
             "fields from baseline",
             static_cast<unsigned long long>(i), msg.c_str(),
             static_cast<unsigned long long>(shrinkDistance(c)),
             static_cast<unsigned long long>(shrinkDistance(minimal)));

        if (!corpus_dir.empty()) {
            std::filesystem::create_directories(corpus_dir);
            std::ostringstream name;
            name << "fail-seed" << seed << "-iter" << i << ".case";
            const std::string path =
                (std::filesystem::path(corpus_dir) / name.str())
                    .string();
            std::ofstream out(path);
            if (!out)
                fatal("fuzz: cannot write corpus file %s",
                      path.c_str());
            out << minimal.serialize();
            rep.corpusFiles.push_back(path);
        }
        if (rep.failures >= kMaxShrunkFailures)
            break;
    }
    return rep;
}

std::vector<PropCase>
loadCorpus(const std::string &dir)
{
    std::vector<PropCase> cases;
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec))
        return cases;
    std::vector<std::string> paths;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".case")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in)
            fatal("corpus: cannot read %s", path.c_str());
        std::ostringstream text;
        text << in.rdbuf();
        cases.push_back(PropCase::parse(text.str()));
    }
    return cases;
}

} // namespace xps
