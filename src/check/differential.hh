/**
 * @file
 * Differential comparator and fuzz driver (DESIGN.md §8): run one
 * PropCase through OooCore (under an accumulating InvariantChecker)
 * and through the in-order ReferenceCore oracle on the same trace
 * buffer, then require
 *
 *   - zero structural invariant violations,
 *   - exactly matching instruction / load / store / branch /
 *     mispredict counts (the committed window is the same trace
 *     window, so any drift is a bookkeeping bug), and
 *   - IPC domination: ooo.cycles <= ref.cycles (the oracle is fully
 *     serialized, so a correct out-of-order core can never be slower).
 *
 * fuzzDifferential() drives this over a seeded stream of random
 * cases; every failure is shrunk to a minimal reproduction and
 * serialized into the replayable corpus under tests/prop_corpus/.
 */

#ifndef XPS_CHECK_DIFFERENTIAL_HH
#define XPS_CHECK_DIFFERENTIAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/propgen.hh"
#include "check/reference_core.hh"
#include "sim/sim_stats.hh"

namespace xps
{

/** Outcome of one differential comparison. */
struct DiffResult
{
    bool passed = false;
    /** Human-readable description of every failed check; empty when
     *  the case passed. */
    std::string failure;
    SimStats ooo;
    RefStats ref;
    std::vector<std::string> invariantViolations;
};

/** Run one case through core + checker + oracle and compare. */
DiffResult runDifferentialCase(const PropCase &c);

/**
 * As runDifferentialCase, additionally routing the case through
 * BatchSimulator full-fidelity evaluation (sim/batch.hh) on the same
 * trace buffer and requiring the batched SimStats to equal the scalar
 * run's bit-for-bit on every field. This is the referee for the
 * batched path's central claim: batching changes the schedule of the
 * simulation, never its result (DESIGN.md §11).
 */
DiffResult runDifferentialCaseBatched(const PropCase &c);

/** Outcome of one fuzzing campaign. */
struct FuzzReport
{
    uint64_t iterations = 0;
    uint64_t failures = 0;
    /** Shrunk minimal reproduction of the first failure. */
    PropCase firstFailure;
    std::string firstFailureMessage;
    /** Corpus files written (one per failure, when corpus_dir set). */
    std::vector<std::string> corpusFiles;
};

/**
 * Generate and check `iters` random cases from `seed`. Each failing
 * case is shrunk to a minimal reproduction; when `corpus_dir` is
 * non-empty the shrunk case is serialized there as a replayable
 * `.case` file. Stops early after a handful of failures (shrinking
 * is the expensive part; one campaign does not need dozens of
 * duplicates of the same bug). With `batched` set, each case also
 * runs through runDifferentialCaseBatched (scalar-vs-batched
 * bit-identity joins the checked properties).
 */
FuzzReport fuzzDifferential(uint64_t iters, uint64_t seed,
                            const std::string &corpus_dir = "",
                            bool batched = false);

/** Parse every `*.case` file under `dir` (sorted by name; empty when
 *  the directory does not exist). */
std::vector<PropCase> loadCorpus(const std::string &dir);

} // namespace xps

#endif // XPS_CHECK_DIFFERENTIAL_HH
