/**
 * @file
 * Differential comparator and fuzz driver (DESIGN.md §8): run one
 * PropCase through OooCore (under an accumulating InvariantChecker)
 * and through the in-order ReferenceCore oracle on the same trace
 * buffer, then require
 *
 *   - zero structural invariant violations,
 *   - exactly matching instruction / load / store / branch /
 *     mispredict counts (the committed window is the same trace
 *     window, so any drift is a bookkeeping bug), and
 *   - IPC domination: ooo.cycles <= ref.cycles (the oracle is fully
 *     serialized, so a correct out-of-order core can never be slower).
 *
 * fuzzDifferential() drives this over a seeded stream of random
 * cases; every failure is shrunk to a minimal reproduction and
 * serialized into the replayable corpus under tests/prop_corpus/.
 */

#ifndef XPS_CHECK_DIFFERENTIAL_HH
#define XPS_CHECK_DIFFERENTIAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/propgen.hh"
#include "check/reference_core.hh"
#include "sim/sim_stats.hh"

namespace xps
{

/** Outcome of one differential comparison. */
struct DiffResult
{
    bool passed = false;
    /** Human-readable description of every failed check; empty when
     *  the case passed. */
    std::string failure;
    SimStats ooo;
    RefStats ref;
    std::vector<std::string> invariantViolations;
};

/** Run one case through core + checker + oracle and compare. */
DiffResult runDifferentialCase(const PropCase &c);

/**
 * As runDifferentialCase, additionally routing the case through
 * BatchSimulator full-fidelity evaluation (sim/batch.hh) on the same
 * trace buffer and requiring the batched SimStats to equal the scalar
 * run's bit-for-bit on every field. This is the referee for the
 * batched path's central claim: batching changes the schedule of the
 * simulation, never its result (DESIGN.md §11).
 */
DiffResult runDifferentialCaseBatched(const PropCase &c);

/** Outcome of one fuzzing campaign. */
struct FuzzReport
{
    uint64_t iterations = 0;
    uint64_t failures = 0;
    /** Shrunk minimal reproduction of the first failure. */
    PropCase firstFailure;
    std::string firstFailureMessage;
    /** Corpus files written (one per failure, when corpus_dir set). */
    std::vector<std::string> corpusFiles;
};

/**
 * Generate and check `iters` random cases from `seed`. Each failing
 * case is shrunk to a minimal reproduction; when `corpus_dir` is
 * non-empty the shrunk case is serialized there as a replayable
 * `.case` file. Stops early after a handful of failures (shrinking
 * is the expensive part; one campaign does not need dozens of
 * duplicates of the same bug). With `batched` set, each case also
 * runs through runDifferentialCaseBatched (scalar-vs-batched
 * bit-identity joins the checked properties).
 */
FuzzReport fuzzDifferential(uint64_t iters, uint64_t seed,
                            const std::string &corpus_dir = "",
                            bool batched = false);

/** Outcome of one surrogate-vs-unscreened chain comparison. */
struct SurrogateChainResult
{
    bool passed = false;
    std::string failure;
    /** Incumbents of the two chains (full-fidelity scores). */
    CoreConfig baselineBest;
    CoreConfig screenedBest;
    double baselineScore = 0.0;
    double screenedScore = 0.0;
    uint64_t vetoes = 0;
    /** Vetoes whose candidate, re-simulated at full fidelity, scored
     *  at or above the threshold the veto claimed it was confidently
     *  below (counted only when merit attribution runs). */
    uint64_t falseVetoes = 0;
};

/**
 * The surrogate screening referee (DESIGN.md §12): run one annealing
 * chain over the case's workload twice from the same seed — once
 * unscreened (plain scalar walk) and once with an IpcPredictor
 * pre-screening a width-1 frontier — and require
 *
 *   - honesty: the screened chain's adopted configuration and score
 *     must exactly match a full-fidelity simulation the chain paid
 *     for (a predicted score can never be adopted), and
 *   - match-or-not-worse: the screened chain adopts the identical
 *     configuration with the bit-identical score (the veto-burns-roll
 *     protocol preserves the trajectory when every veto is correct),
 *     or a configuration whose full-fidelity score is at least the
 *     unscreened chain's.
 *
 * A worse adopted score is excused only when the referee can prove a
 * false veto caused it: every vetoed candidate is re-simulated at
 * full fidelity, and at least one must score at or above the
 * threshold its veto claimed it was confidently below. A wrong
 * prediction skipping good work is the model missing — the fidelity
 * ladder's accepted cost, bounded by the calibration report. Worse
 * merit with every veto verified correct means the protocol itself
 * lost the trajectory (a correct veto's candidate had Metropolis
 * acceptance probability <= e^-vetoMargin), and that is the bug class
 * this referee hunts.
 */
SurrogateChainResult runSurrogateChainCase(const PropCase &c);

/** fuzzDifferential's analogue for runSurrogateChainCase: failing
 *  cases are shrunk and written to the corpus as `surr-*.case`. */
FuzzReport fuzzSurrogate(uint64_t iters, uint64_t seed,
                         const std::string &corpus_dir = "");

/** Parse every `*.case` file under `dir` (sorted by name; empty when
 *  the directory does not exist). A non-empty `prefix` restricts to
 *  files whose name starts with it (e.g. "surr-" for the surrogate
 *  tier's reproductions). */
std::vector<PropCase> loadCorpus(const std::string &dir,
                                 const std::string &prefix = "");

} // namespace xps

#endif // XPS_CHECK_DIFFERENTIAL_HH
