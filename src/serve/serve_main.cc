/**
 * @file
 * xps-serve entry point. All policy comes from the environment (see
 * ServerOptions::fromEnv and README "Serving"); the flags below are
 * conveniences that override the matching knob.
 *
 *   xps-serve [--socket PATH] [--dir PATH] [--queue-max N]
 *             [--workers N]
 *
 * Exit codes: kGracefulExitCode (99) after a clean SIGINT/SIGTERM
 * drain, 1 on fatal boot errors (socket owned by a live daemon,
 * unusable state directory).
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "serve/server.hh"
#include "util/logging.hh"
#include "util/shutdown.hh"

using namespace xps;

int
main(int argc, char **argv)
{
    serve::ServerOptions opts = serve::ServerOptions::fromEnv();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("xps-serve: %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--socket")
            opts.socketPath = value();
        else if (arg == "--dir")
            opts.stateDir = value();
        else if (arg == "--queue-max")
            opts.queueMax =
                static_cast<size_t>(std::strtoull(value(), nullptr, 10));
        else if (arg == "--workers")
            opts.workers =
                static_cast<int>(std::strtol(value(), nullptr, 10));
        else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: xps-serve [--socket PATH] [--dir PATH] "
                "[--queue-max N] [--workers N]\n"
                "env: XPS_SERVE_SOCKET XPS_SERVE_DIR "
                "XPS_SERVE_QUEUE_MAX XPS_SERVE_DEADLINE_S "
                "XPS_SERVE_DRAIN_S XPS_SERVE_WORKERS "
                "XPS_SERVE_CKPT_EVERY\n");
            return 0;
        } else {
            fatal("xps-serve: unknown flag %s", arg.c_str());
        }
    }
    installShutdownHandlers();
    inform("xps-serve: boot pid %d socket %s dir %s",
           static_cast<int>(::getpid()), opts.socketPath.c_str(),
           opts.stateDir.c_str());
    serve::Server server(opts);
    return server.run();
}
