#include "serve/journal.hh"

#include <signal.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <sstream>

#include "obs/json.hh"
#include "util/atomic_file.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace xps
{
namespace serve
{

namespace fs = std::filesystem;

Journal::Journal(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        fatal("journal: cannot create %s: %s", dir_.c_str(),
              ec.message().c_str());
}

std::string
Journal::path(const std::string &key) const
{
    return dir_ + "/job." + key + ".json";
}

void
Journal::record(const JournalRecord &rec)
{
    std::ostringstream out;
    out << "{\"key\":\"" << obs::json::escape(rec.key)
        << "\",\"state\":\"" << obs::json::escape(rec.state)
        << "\",\"seq\":" << rec.seq << ",\"request\":\""
        << obs::json::escape(rec.request) << "\"}\n";
    atomicWriteFile(path(rec.key), out.str(), "serve.journal");
}

void
Journal::remove(const std::string &key)
{
    std::error_code ec;
    fs::remove(path(key), ec);
}

std::vector<JournalRecord>
Journal::recover()
{
    Metrics &metrics = Metrics::global();
    std::vector<JournalRecord> live;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        // Orphaned staging temps (`<file>.tmp.<pid>.<nonce>`) from a
        // writer that died mid-publish: remove when the pid is gone,
        // mirroring atomicWriteFile's pre-stage sweep — the journal
        // must not accrete garbage across crash loops.
        const size_t tmp = name.find(".tmp.");
        if (tmp != std::string::npos) {
            const size_t pid_at = tmp + 5;
            const size_t pid_end = name.find('.', pid_at);
            const long pid = std::strtol(
                name.c_str() + pid_at, nullptr, 10);
            if (pid_end != std::string::npos && pid > 0 &&
                ::kill(static_cast<pid_t>(pid), 0) == -1 &&
                errno == ESRCH) {
                fs::remove(entry.path(), ec);
                metrics.counter("serve.journal_temps_swept").add();
            }
            continue;
        }
        if (name.rfind("job.", 0) != 0 ||
            name.find(".json") == std::string::npos)
            continue;
        std::string content;
        obs::json::Value v;
        JournalRecord rec;
        if (!readFile(entry.path().string(), content) ||
            !obs::json::parse(content, v) || !v.isObject() ||
            (rec.key = v.stringOr("key", "")).empty() ||
            (rec.state = v.stringOr("state", "")).empty()) {
            warn("journal: removing torn record %s", name.c_str());
            fs::remove(entry.path(), ec);
            metrics.counter("serve.journal_torn").add();
            continue;
        }
        rec.seq = static_cast<uint64_t>(v.numberOr("seq", 0));
        rec.request = v.stringOr("request", "");
        seq_ = std::max(seq_, rec.seq + 1);
        if (rec.state == "completed") {
            // Publish won the race with the crash; the store has it.
            fs::remove(entry.path(), ec);
            continue;
        }
        live.push_back(std::move(rec));
    }
    std::sort(live.begin(), live.end(),
              [](const JournalRecord &a, const JournalRecord &b) {
                  return a.seq < b.seq;
              });
    if (!live.empty()) {
        inform("journal: recovered %zu outstanding job(s)",
               live.size());
        metrics.counter("serve.journal_recovered").add(live.size());
    }
    return live;
}

} // namespace serve
} // namespace xps
