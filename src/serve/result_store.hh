/**
 * @file
 * The content-addressed result store (DESIGN.md §13.4). One CSV per
 * distinct request identity, named `res.<key>.csv` where the key is
 * the 64-bit hash of the request's canonical manifest (schema, op,
 * budget, profile/config fingerprints). The manifest is embedded in
 * the file and re-validated on every lookup by readCsvValidated — a
 * hash collision, torn write, or schema drift reads as a miss (with
 * its cache.reject_reason counted), never as a wrong answer.
 *
 * Publishes go through the `serve.publish` fault site: an injected
 * torn write leaves a file lookup() rejects, so the worst case is a
 * recompute. Degraded results (quarantined matrix rows) are NEVER
 * stored — a cache must not replay a degradation that a healthy
 * rerun would not reproduce.
 */

#ifndef XPS_SERVE_RESULT_STORE_HH
#define XPS_SERVE_RESULT_STORE_HH

#include <string>

#include "util/csv.hh"

namespace xps
{
namespace serve
{

class ResultStore
{
  public:
    explicit ResultStore(std::string dir);

    /** True (and fills `doc`) when a valid entry for this identity
     *  exists. Counts serve.cache_hits / serve.cache_misses. */
    bool lookup(const CsvManifest &identity, CsvDoc &doc);

    /** Atomically publish a result (fault site serve.publish). */
    void publish(const CsvManifest &identity, const CsvDoc &doc);

    /** The entry path for an identity (exposed for tests). */
    std::string entryPath(const CsvManifest &identity) const;

    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
};

} // namespace serve
} // namespace xps

#endif // XPS_SERVE_RESULT_STORE_HH
