/**
 * @file
 * The xps-serve wire protocol (DESIGN.md §13.2): newline-delimited
 * JSON over a Unix-domain stream socket. One request line in, one
 * response line out, in request order per connection.
 *
 * Parsing is closed-world (obs/json): unknown ops, unknown workload
 * names, unknown configuration keys, and configurations that fail
 * checkFits() are rejected with an explicit error response — client
 * input is untrusted and must never fatal() the daemon.
 *
 * Every compute request canonicalizes to a CsvManifest identity
 * (schema version, op, budget knobs, profile and config
 * fingerprints). That manifest is simultaneously the content-address
 * of the result store entry, the validation identity of the stored
 * CSV, and the coalescing key for duplicate in-flight requests.
 */

#ifndef XPS_SERVE_PROTOCOL_HH
#define XPS_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "util/csv.hh"
#include "workload/profile.hh"

namespace xps
{
namespace serve
{

/** Protocol schema version, embedded in every result identity. */
constexpr const char *kSchema = "xps-serve v1";

/** One parsed, validated client request. */
struct Request
{
    enum class Op
    {
        Ping,    ///< liveness probe, answered inline
        Stats,   ///< serve counters + queue depth, answered inline
        Metrics, ///< live counters + latency percentiles, inline
        Whatif,  ///< IPT of each workload on one configuration
        Matrix,  ///< workloads x configs IPT matrix
        Explore  ///< full per-workload exploration (annealing)
    };

    Op op = Op::Ping;
    std::string id;     ///< echoed in the response (client-chosen)
    std::string client; ///< fair-share identity; "anon" when absent
    /** Distributed-tracing request id (DESIGN.md §14): minted by
     *  xps-client (or the daemon when absent), stamped onto every
     *  span the request touches across client, daemon and worker.
     *  Deliberately NOT part of requestIdentity() — identical queries
     *  with different rids must still coalesce and cache-hit. */
    std::string rid;
    /** Wall-clock deadline for the compute job in seconds; 0 = use
     *  the server default (XPS_SERVE_DEADLINE_S). */
    double deadlineS = 0.0;

    std::vector<WorkloadProfile> workloads;
    std::vector<CoreConfig> configs; ///< whatif: exactly one
    uint64_t instrs = 20000;         ///< per-evaluation budget
    uint64_t saIters = 48;           ///< explore: annealing steps
    int rounds = 2;                  ///< explore: adoption rounds
    uint64_t seed = 7;               ///< explore: master seed

    bool isCompute() const
    {
        return op == Op::Whatif || op == Op::Matrix ||
               op == Op::Explore;
    }
};

/**
 * Parse and validate one request line. Returns false with a
 * human-readable `error` on any deviation from the closed world —
 * malformed JSON, unknown op/workload/config key, out-of-range
 * budget, or a configuration that violates the timing model.
 */
bool parseRequest(const std::string &line, Request &req,
                  std::string &error);

/** Canonical identity of a compute request's result: the manifest
 *  stored in (and validated against) the result-store CSV. */
CsvManifest requestIdentity(const Request &req);

/** Stable 64-bit content key of an identity, as 16 hex digits —
 *  the result-store filename and the journal/coalescing key. */
std::string identityKey(const CsvManifest &identity);

/** The stable op name ("ping", "whatif", ...). */
const char *opName(Request::Op op);

// --- responses (single JSON lines, newline appended by the server) --

/** status:"ok" response carrying the result rows: each CSV row
 *  becomes one JSON object keyed by the CSV header. */
std::string okResponse(const std::string &id, const CsvDoc &doc,
                       bool cacheHit, bool degraded);

/** status:"error" — the request itself is at fault (parse error,
 *  unknown workload, infeasible config, failed job). */
std::string errorResponse(const std::string &id,
                          const std::string &message);

/** status:"overloaded" — admission control shed the request;
 *  `retryAfterS` is the client's backoff hint. */
std::string overloadedResponse(const std::string &id,
                               double retryAfterS);

/** status:"retry" — the daemon is draining; the job (if any) is
 *  journaled and will resume on the next boot. */
std::string shuttingDownResponse(const std::string &id);

} // namespace serve
} // namespace xps

#endif // XPS_SERVE_PROTOCOL_HH
