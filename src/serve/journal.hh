/**
 * @file
 * The crash-safe job journal (DESIGN.md §13.3). Every accepted
 * compute job owns one record file `job.<key>.json` in the journal
 * directory, rewritten atomically (util/atomic_file, fault site
 * `serve.journal`) on each state transition:
 *
 *   accepted  -> admitted to the queue, not yet dispatched
 *   started   -> dispatched to a pool worker
 *   completed -> result published to the store; removed right after
 *
 * On boot, recover() sweeps orphaned staging temps left by a dead
 * writer (mirroring atomicWriteFile's own sweep), removes `completed`
 * records (the publish won the race with the crash — the store has
 * the result), skips-and-removes torn records (a crash mid-rename
 * can leave pre-v1 garbage; atomic writes make this near-impossible,
 * but the reader never trusts it), and returns the rest ordered by
 * admission sequence so a SIGKILL'd daemon resumes exactly the jobs
 * it owed. Re-run jobs consult the result store first, so a crash
 * between publish and record-removal costs a cache hit, never a
 * recompute or a duplicate.
 */

#ifndef XPS_SERVE_JOURNAL_HH
#define XPS_SERVE_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace xps
{
namespace serve
{

/** One journal record, as persisted. */
struct JournalRecord
{
    std::string key; ///< result-store content key (16 hex digits)
    std::string state; ///< "accepted", "started", or "completed"
    uint64_t seq = 0;  ///< admission order, monotonic across boots
    /** The original request line, verbatim — recovery re-parses it
     *  through the same closed-world parser as live traffic. */
    std::string request;
};

/** The journal directory manager. Single-threaded, like the daemon. */
class Journal
{
  public:
    explicit Journal(std::string dir);

    /** Persist a record (atomic replace; fault site serve.journal). */
    void record(const JournalRecord &rec);

    /** Remove a job's record (after its result is published and every
     *  waiter answered). Missing file is fine. */
    void remove(const std::string &key);

    /**
     * Boot-time recovery: sweep dead writers' temps, drop completed
     * and torn records, and return the outstanding jobs sorted by
     * seq. Also primes nextSeq() past everything ever journaled.
     */
    std::vector<JournalRecord> recover();

    /** The next admission sequence number (monotonic across boots
     *  once recover() has run). */
    uint64_t nextSeq() { return seq_++; }

    const std::string &dir() const { return dir_; }

  private:
    std::string path(const std::string &key) const;

    std::string dir_;
    uint64_t seq_ = 1;
};

} // namespace serve
} // namespace xps

#endif // XPS_SERVE_JOURNAL_HH
