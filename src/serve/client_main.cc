/**
 * @file
 * xps-client: one request line to a running xps-serve, one response
 * line to stdout.
 *
 *   xps-client [--socket PATH] [--timeout S] ping|stats|'<json>'
 *
 * Exit codes map the response status for scripting: 0 ok, 1 error,
 * 2 transport failure (no daemon, timeout, torn connection),
 * 3 overloaded / draining (retry later).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json.hh"
#include "serve/client.hh"
#include "util/env.hh"
#include "util/logging.hh"

using namespace xps;

int
main(int argc, char **argv)
{
    std::string socket = envString(
        "XPS_SERVE_SOCKET", Budget::get().resultsDir + "/xps-serve.sock");
    double timeout = 30.0;
    std::string line;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("xps-client: %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--socket")
            socket = value();
        else if (arg == "--timeout")
            timeout = std::strtod(value(), nullptr);
        else if (arg == "--help" || arg == "-h") {
            std::printf("usage: xps-client [--socket PATH] "
                        "[--timeout S] ping|stats|'<json request>'\n");
            return 0;
        } else if (line.empty()) {
            // Shorthands for the two inline ops; anything else is a
            // raw request line.
            if (arg == "ping")
                line = "{\"op\":\"ping\"}";
            else if (arg == "stats")
                line = "{\"op\":\"stats\"}";
            else
                line = arg;
        } else {
            fatal("xps-client: one request per invocation (got "
                  "extra arg %s)", arg.c_str());
        }
    }
    if (line.empty()) {
        std::fprintf(stderr, "xps-client: no request given\n");
        return 2;
    }

    serve::Client client;
    std::string response;
    if (!client.connect(socket, timeout) ||
        !client.request(line, response, timeout)) {
        std::fprintf(stderr, "xps-client: %s\n",
                     client.error().c_str());
        return 2;
    }
    std::printf("%s\n", response.c_str());

    obs::json::Value v;
    if (!obs::json::parse(response, v))
        return 2;
    const std::string status = v.stringOr("status", "");
    if (status == "ok")
        return 0;
    if (status == "overloaded" || status == "retry")
        return 3;
    return 1;
}
