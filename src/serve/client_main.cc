/**
 * @file
 * xps-client: one request line to a running xps-serve, one response
 * line to stdout.
 *
 *   xps-client [--socket PATH] [--timeout S] \
 *       ping|stats|metrics|top|'<json>'
 *
 * Exit codes map the response status for scripting: 0 ok, 1 error,
 * 2 transport failure (no daemon, timeout, torn connection),
 * 3 overloaded / draining (retry later).
 *
 * Distributed tracing (DESIGN.md §14): when the request carries no
 * "rid", the client mints one and injects it, then stamps its own
 * client.request span with it. With XPS_TRACE_JSON set on both sides
 * (and XPS_TRACE_MERGE=0 here, so the daemon owns the merge), the
 * merged timeline links the client, daemon, and worker spans of this
 * request into one Perfetto flow.
 *
 * `top` is the one-shot health view: daemon queue state, overload
 * ratio, and SLO percentiles rendered from the `metrics` op.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json.hh"
#include "obs/tracer.hh"
#include "serve/client.hh"
#include "util/env.hh"
#include "util/logging.hh"

using namespace xps;

namespace
{

/** Mint a request id unique across processes and invocations. */
std::string
mintRid()
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "c%d-%llx",
                  static_cast<int>(::getpid()),
                  static_cast<unsigned long long>(
                      obs::detail::nowNs() & 0xffffffffull));
    return buf;
}

/**
 * Ensure the request line carries a "rid", minting and injecting one
 * when absent. Malformed lines pass through untouched — the daemon's
 * closed-world parser owns that rejection.
 */
std::string
withRid(const std::string &line, std::string &rid)
{
    obs::json::Value v;
    if (!obs::json::parse(line, v) || !v.isObject())
        return line;
    rid = v.stringOr("rid", "");
    if (!rid.empty())
        return line;
    rid = mintRid();
    const size_t brace = line.find('{');
    std::string out = line;
    out.insert(brace + 1,
               "\"rid\":\"" + rid + (v.fields.empty() ? "\"" : "\","));
    return out;
}

double
ms(double ns)
{
    return ns / 1e6;
}

/** Render the `metrics` response as a one-shot health view. */
void
renderTop(const obs::json::Value &v)
{
    std::printf("xps-serve health\n");
    std::printf("  queued %.0f / %.0f max, running %.0f of %.0f "
                "workers\n",
                v.numberOr("queued", 0), v.numberOr("queue_max", 0),
                v.numberOr("running", 0), v.numberOr("workers", 0));
    const obs::json::Value *counters = v.find("counters");
    if (counters && counters->isObject()) {
        const double requests = counters->numberOr("serve.requests", 0);
        const double shed = counters->numberOr("serve.shed", 0);
        std::printf(
            "  requests %.0f, completed %.0f, failed %.0f, "
            "shed %.0f (overload ratio %.1f%%), coalesced %.0f\n",
            requests, counters->numberOr("serve.completed", 0),
            counters->numberOr("serve.failed", 0), shed,
            requests > 0 ? 100.0 * shed / requests : 0.0,
            counters->numberOr("serve.coalesced", 0));
        std::printf("  cache hits %.0f / misses %.0f\n",
                    counters->numberOr("serve.cache_hits", 0),
                    counters->numberOr("serve.cache_misses", 0));
    }
    const obs::json::Value *hists = v.find("histograms_ns");
    if (!hists || !hists->isObject() || hists->fields.empty())
        return;
    std::printf("  %-24s %10s %10s %10s %10s %10s\n", "latency (ms)",
                "count", "p50", "p95", "p99", "max");
    for (const auto &[name, h] : hists->fields) {
        if (!h.isObject())
            continue;
        std::printf("  %-24s %10.0f %10.2f %10.2f %10.2f %10.2f\n",
                    name.c_str(), h.numberOr("count", 0),
                    ms(h.numberOr("p50", 0)), ms(h.numberOr("p95", 0)),
                    ms(h.numberOr("p99", 0)),
                    ms(h.numberOr("max", 0)));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket = envString(
        "XPS_SERVE_SOCKET", Budget::get().resultsDir + "/xps-serve.sock");
    double timeout = 30.0;
    std::string line;
    bool top = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("xps-client: %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--socket")
            socket = value();
        else if (arg == "--timeout")
            timeout = std::strtod(value(), nullptr);
        else if (arg == "--help" || arg == "-h") {
            std::printf("usage: xps-client [--socket PATH] "
                        "[--timeout S] "
                        "ping|stats|metrics|top|'<json request>'\n");
            return 0;
        } else if (line.empty()) {
            // Shorthands for the inline ops; anything else is a raw
            // request line.
            if (arg == "ping")
                line = "{\"op\":\"ping\"}";
            else if (arg == "stats")
                line = "{\"op\":\"stats\"}";
            else if (arg == "metrics")
                line = "{\"op\":\"metrics\"}";
            else if (arg == "top") {
                line = "{\"op\":\"metrics\"}";
                top = true;
            } else
                line = arg;
        } else {
            fatal("xps-client: one request per invocation (got "
                  "extra arg %s)", arg.c_str());
        }
    }
    if (line.empty()) {
        std::fprintf(stderr, "xps-client: no request given\n");
        return 2;
    }

    obs::setProcessName("serve/client");
    std::string rid;
    line = withRid(line, rid);
    obs::RequestScope ridScope(rid);

    serve::Client client;
    std::string response;
    bool ok;
    {
        obs::ScopedSpan span("client.request", "client", [&] {
            return obs::Args().add("rid", rid);
        });
        ok = client.connect(socket, timeout) &&
             client.request(line, response, timeout);
    }
    if (!ok) {
        std::fprintf(stderr, "xps-client: %s\n",
                     client.error().c_str());
        return 2;
    }

    obs::json::Value v;
    if (!obs::json::parse(response, v)) {
        std::printf("%s\n", response.c_str());
        return 2;
    }
    const std::string status = v.stringOr("status", "");
    if (top && status == "ok")
        renderTop(v);
    else
        std::printf("%s\n", response.c_str());
    if (status == "ok")
        return 0;
    if (status == "overloaded" || status == "retry")
        return 3;
    return 1;
}
