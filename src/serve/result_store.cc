#include "serve/result_store.hh"

#include <filesystem>

#include "serve/protocol.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace xps
{
namespace serve
{

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatal("result store: cannot create %s: %s", dir_.c_str(),
              ec.message().c_str());
}

std::string
ResultStore::entryPath(const CsvManifest &identity) const
{
    return dir_ + "/res." + identityKey(identity) + ".csv";
}

bool
ResultStore::lookup(const CsvManifest &identity, CsvDoc &doc)
{
    CsvReject reason = CsvReject::None;
    const bool hit =
        readCsvValidated(entryPath(identity), doc, identity, reason);
    Metrics::global()
        .counter(hit ? "serve.cache_hits" : "serve.cache_misses")
        .add();
    return hit;
}

void
ResultStore::publish(const CsvManifest &identity, const CsvDoc &doc)
{
    writeCsv(entryPath(identity), doc, identity, "serve.publish");
    Metrics::global().counter("serve.cache_publishes").add();
}

} // namespace serve
} // namespace xps
