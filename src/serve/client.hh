/**
 * @file
 * Thin client for the xps-serve protocol: connect to the daemon's
 * Unix socket, send newline-delimited JSON request lines, read the
 * matching response lines. Used by the xps-client CLI, the serve test
 * tier, and the CI smoke script; deliberately free of any knowledge
 * of the request payloads — it moves lines.
 */

#ifndef XPS_SERVE_CLIENT_HH
#define XPS_SERVE_CLIENT_HH

#include <string>
#include <vector>

namespace xps
{
namespace serve
{

/** One connection to a daemon. Methods return false (with `error()`
 *  set) on transport problems; they never fatal(). */
class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to `socketPath`, waiting up to `timeoutS` for the
     *  socket to exist and accept (covers a daemon still booting). */
    bool connect(const std::string &socketPath, double timeoutS = 5.0);

    /** Send one request line (newline appended). */
    bool send(const std::string &line);

    /** Read one response line, waiting up to `timeoutS`. */
    bool receive(std::string &line, double timeoutS = 30.0);

    /** send() + receive() in one step. */
    bool request(const std::string &line, std::string &response,
                 double timeoutS = 30.0);

    void close();
    bool isConnected() const { return fd_ >= 0; }
    const std::string &error() const { return error_; }

  private:
    int fd_ = -1;
    std::string buf_;
    std::string error_;
};

} // namespace serve
} // namespace xps

#endif // XPS_SERVE_CLIENT_HH
