#include "serve/client.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace xps
{
namespace serve
{

namespace
{
using Clock = std::chrono::steady_clock;
}

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
    buf_.clear();
}

bool
Client::connect(const std::string &socketPath, double timeoutS)
{
    close();
    sockaddr_un addr = {};
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        error_ = "socket path too long for sun_path";
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(timeoutS));
    // Retry while the daemon boots (socket absent) or its backlog is
    // briefly full (ECONNREFUSED straight after bind).
    for (;;) {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0) {
            error_ = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return true;
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        if (Clock::now() >= deadline) {
            error_ = std::string("connect(") + socketPath +
                     "): " + std::strerror(err);
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

bool
Client::send(const std::string &line)
{
    if (fd_ < 0) {
        error_ = "not connected";
        return false;
    }
    const std::string out = line + "\n";
    size_t off = 0;
    while (off < out.size()) {
        const ssize_t n =
            ::write(fd_, out.data() + off, out.size() - off);
        if (n <= 0) {
            if (errno == EINTR)
                continue;
            error_ = std::string("send: ") + std::strerror(errno);
            close();
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
Client::receive(std::string &line, double timeoutS)
{
    if (fd_ < 0) {
        error_ = "not connected";
        return false;
    }
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(timeoutS));
    for (;;) {
        const size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return true;
        }
        const auto left = std::chrono::duration_cast<
                              std::chrono::milliseconds>(deadline -
                                                         Clock::now())
                              .count();
        if (left <= 0) {
            error_ = "timed out waiting for a response";
            return false;
        }
        pollfd pfd = {fd_, POLLIN, 0};
        const int pr =
            ::poll(&pfd, 1, static_cast<int>(std::min<long long>(
                                left, 1000)));
        if (pr < 0 && errno != EINTR) {
            error_ = std::string("poll: ") + std::strerror(errno);
            return false;
        }
        if (pr <= 0)
            continue;
        char chunk[4096];
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n == 0) {
            error_ = "daemon closed the connection";
            close();
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error_ = std::string("read: ") + std::strerror(errno);
            close();
            return false;
        }
        buf_.append(chunk, static_cast<size_t>(n));
    }
}

bool
Client::request(const std::string &line, std::string &response,
                double timeoutS)
{
    return send(line) && receive(response, timeoutS);
}

} // namespace serve
} // namespace xps
