/**
 * @file
 * The xps-serve daemon (DESIGN.md §13): a single-threaded Unix-
 * domain-socket event loop that multiplexes client connections over
 * the incremental ProcPool engine. Every compute request flows
 *
 *   parse (closed world) -> store lookup -> coalesce -> admission
 *   -> journal(accepted) -> fair-share dispatch -> journal(started)
 *   -> forked worker -> validate -> publish -> journal(completed)
 *   -> respond -> journal remove
 *
 * Robustness layers:
 *  - admission control: a bounded queue (XPS_SERVE_QUEUE_MAX) with
 *    least-recently-served fair-share ordering per client; overflow
 *    is shed with an explicit `overloaded` + retry-after hint;
 *  - crash safety: the job journal makes a SIGKILL'd daemon resume
 *    exactly its outstanding jobs on the next boot, and the content-
 *    addressed store turns the publish/remove crash window into a
 *    cache hit instead of a duplicate;
 *  - graceful drain: SIGTERM stops admissions, finishes running jobs
 *    within XPS_SERVE_DRAIN_S, leaves the rest journaled, flushes
 *    metrics/trace, removes socket and pidfile, exits
 *    kGracefulExitCode;
 *  - boot hygiene: stale-socket/pidfile takeover (a live daemon on
 *    the same socket is fatal; a dead one is swept) and orphaned
 *    journal-temp sweeping.
 *
 * Fault sites serve.accept / serve.journal / serve.publish /
 * serve.respond make every one of these seams injectable.
 */

#ifndef XPS_SERVE_SERVER_HH
#define XPS_SERVE_SERVER_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/journal.hh"
#include "serve/protocol.hh"
#include "serve/result_store.hh"
#include "util/procpool.hh"

namespace xps
{
namespace serve
{

/** Daemon policy, resolved from the environment by fromEnv(). */
struct ServerOptions
{
    /** Socket path (XPS_SERVE_SOCKET; default
     *  $XPS_RESULTS_DIR/xps-serve.sock). Must fit sun_path. */
    std::string socketPath;
    /** State directory (XPS_SERVE_DIR; default
     *  $XPS_RESULTS_DIR/serve): store/, journal/, staging/ live
     *  under it. */
    std::string stateDir;
    /** Max queued-but-not-started jobs before shedding
     *  (XPS_SERVE_QUEUE_MAX). */
    size_t queueMax = 16;
    /** Default per-job wall-clock deadline in seconds when the
     *  request carries none (XPS_SERVE_DEADLINE_S; 0 = unlimited). */
    double defaultDeadlineS = 0.0;
    /** Drain budget after SIGTERM (XPS_SERVE_DRAIN_S). */
    double drainS = 5.0;
    /** Concurrent compute workers (XPS_SERVE_WORKERS; <=0:
     *  resolveThreads()). */
    int workers = 2;
    /** Worker supervision (shared with the one-shot pipeline knobs
     *  XPS_HEARTBEAT_S / XPS_JOB_RETRIES). */
    double heartbeatTimeoutSeconds = 30.0;
    int maxAttempts = 3;
    /** Annealing checkpoint cadence for explore jobs, so a SIGKILL'd
     *  daemon's re-run resumes instead of restarting
     *  (XPS_SERVE_CKPT_EVERY; 0 disables). */
    uint64_t checkpointEvery = 8;
    /** Cadence in seconds for writing a Prometheus text-exposition
     *  snapshot to <stateDir>/metrics.prom (XPS_METRICS_EXPORT_S;
     *  0 disables). Written atomically (tmp + rename), so a scraper
     *  never reads a torn file. */
    double metricsExportS = 0.0;

    static ServerOptions fromEnv();
};

/** The daemon. Construct, then run() until drain; single-threaded. */
class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Boot (takeover, sweep, journal recovery), then serve until a
     * stop is requested (util/shutdown.hh). Returns the process exit
     * code: kGracefulExitCode after a clean drain.
     */
    int run();

    /** One event-loop iteration (exposed for tests driving the loop
     *  manually; run() is this in a loop). */
    void step(int timeoutMs);

    const std::string &socketPath() const { return opts_.socketPath; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Connection
    {
        int fd;
        std::string buf; ///< unparsed request bytes
    };

    /** One admitted compute job and everyone waiting on it. */
    struct Job
    {
        uint64_t seq = 0;
        std::string key;
        Request req;
        CsvManifest identity;
        std::string requestLine;
        std::string resultPath; ///< staging file the worker publishes
        /** (connection fd, request id) of every coalesced waiter;
         *  recovered jobs start with none. */
        std::vector<std::pair<int, std::string>> waiters;
        bool started = false;
        uint64_t ticket = 0;
        Clock::time_point accepted;
    };

    void boot();
    void takeoverSocket();
    void recoverJournal();
    void acceptClient();
    void readClient(size_t idx);
    void closeClient(size_t idx);
    void closeInheritedFds();
    void handleLine(int fd, const std::string &line);
    void handleCompute(int fd, const Request &req,
                       const std::string &line);
    void dispatch();
    void harvest();
    void respond(int fd, const std::string &payload);
    bool connected(int fd) const;
    void answerWaiters(Job &job, const std::string &payload);
    std::string statsResponse(const std::string &id) const;
    std::string metricsResponse(const std::string &id) const;
    void journalRecord(const JournalRecord &rec);
    void maybeExportMetrics(bool force);
    ProcJob makeProcJob(Job &job);
    int drain();

    ServerOptions opts_;
    ProcPool pool_;
    ResultStore store_;
    Journal journal_;
    int listenFd_ = -1;
    std::vector<Connection> conns_;
    std::vector<Job> jobs_; ///< queued + running, admission order
    size_t started_ = 0;    ///< jobs dispatched and not yet harvested
    /** Fair share: when each client was last served (by seq). */
    std::map<std::string, uint64_t> lastServed_;
    bool booted_ = false;
    /** Daemon-minted request ids for clients that sent none. */
    uint64_t ridCounter_ = 0;
    Clock::time_point lastMetricsExport_{};
};

} // namespace serve
} // namespace xps

#endif // XPS_SERVE_SERVER_HH
