#include "serve/server.hh"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "comm/perf_matrix.hh"
#include "explore/explorer.hh"
#include "explore/supervisor.hh"
#include "obs/json.hh"
#include "obs/log.hh"
#include "obs/tracer.hh"
#include "sim/simulator.hh"
#include "util/atomic_file.hh"
#include "util/env.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/shutdown.hh"

namespace xps
{
namespace serve
{

namespace fs = std::filesystem;

namespace
{

/** %.17g round-trips a double exactly, so identical computations
 *  yield byte-identical CSV cells and responses. */
std::string
fmtDouble(double x)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", x);
    return buf;
}

/** True when a result carries a quarantined (missing) row. */
bool
isDegraded(const CsvDoc &doc)
{
    size_t status = SIZE_MAX;
    for (size_t c = 0; c < doc.header.size(); ++c) {
        if (doc.header[c] == "status")
            status = c;
    }
    if (status == SIZE_MAX)
        return false;
    for (const auto &row : doc.rows) {
        if (row[status] != "ok")
            return true;
    }
    return false;
}

// --- worker bodies (run in a forked pool child) ---------------------

int
runWhatif(const Request &req, const CsvManifest &identity,
          const std::string &resultPath)
{
    CsvDoc doc;
    doc.header = {"workload", "ipt"};
    SimOptions sim;
    sim.measureInstrs = req.instrs;
    for (const WorkloadProfile &p : req.workloads) {
        ProcPool::beat();
        const SimStats stats = simulate(p, req.configs[0], sim);
        doc.rows.push_back({p.name, fmtDouble(stats.ipt())});
    }
    writeCsv(resultPath, doc, identity, "worker.result");
    return 0;
}

int
runMatrix(const Request &req, const CsvManifest &identity,
          const std::string &resultPath, const ServerOptions &opts)
{
    // Nested supervision: this worker forks one grandchild per row,
    // so a crashing cell costs a retry and a repeatedly failing row
    // is quarantined — marked in the result, never silently dropped.
    SupervisorOptions sup_opts;
    sup_opts.workers = 1;
    sup_opts.heartbeatTimeoutSeconds = opts.heartbeatTimeoutSeconds;
    sup_opts.maxAttempts = opts.maxAttempts;
    sup_opts.backoffBaseSeconds = 0.01;
    sup_opts.backoffCapSeconds = 0.1;
    sup_opts.workDir = resultPath + ".mx";
    Supervisor sup(sup_opts);
    std::vector<std::string> missing;
    const PerfMatrix matrix = PerfMatrix::buildSupervised(
        req.workloads, req.configs, req.instrs, sup, &missing);
    auto isMissing = [&](const std::string &name) {
        for (const std::string &m : missing) {
            if (m == name)
                return true;
        }
        return false;
    };
    CsvDoc doc;
    doc.header = {"workload", "config", "ipt", "status"};
    for (size_t w = 0; w < req.workloads.size(); ++w) {
        const bool miss = isMissing(req.workloads[w].name);
        for (size_t c = 0; c < req.configs.size(); ++c) {
            doc.rows.push_back(
                {req.workloads[w].name, std::to_string(c),
                 miss ? "nan" : fmtDouble(matrix.ipt(w, c)),
                 miss ? "missing" : "ok"});
        }
    }
    std::error_code ec;
    fs::remove_all(sup_opts.workDir, ec);
    writeCsv(resultPath, doc, identity, "worker.result");
    return 0;
}

int
runExplore(const Request &req, const CsvManifest &identity,
           const std::string &resultPath, const ServerOptions &opts,
           const std::string &ckptDir)
{
    ExplorerOptions eopts;
    eopts.evalInstrs = req.instrs;
    eopts.saIters = req.saIters;
    eopts.rounds = req.rounds;
    eopts.seed = req.seed;
    eopts.threads = 1;
    eopts.finalEvalInstrs = 2 * req.instrs;
    // The journal makes a killed daemon re-run this job; the annealer
    // checkpoints make the re-run resume bit-identically instead of
    // paying the whole exploration again.
    eopts.checkpointEvery = opts.checkpointEvery;
    eopts.checkpointDir = ckptDir;
    Explorer explorer(req.workloads, eopts);
    const std::vector<WorkloadResult> results = explorer.exploreAll();
    CsvDoc doc;
    doc.header = {"workload", "ipt"};
    const auto cfg_header = CoreConfig::csvHeader();
    doc.header.insert(doc.header.end(), cfg_header.begin(),
                      cfg_header.end());
    for (const WorkloadResult &r : results) {
        std::vector<std::string> row = {r.workload,
                                        fmtDouble(r.bestIpt)};
        const auto cfg_row = r.best.toCsvRow();
        row.insert(row.end(), cfg_row.begin(), cfg_row.end());
        doc.rows.push_back(std::move(row));
    }
    writeCsv(resultPath, doc, identity, "worker.result");
    return 0;
}

} // namespace

ServerOptions
ServerOptions::fromEnv()
{
    ServerOptions opts;
    const std::string base = Budget::get().resultsDir;
    opts.socketPath =
        envString("XPS_SERVE_SOCKET", base + "/xps-serve.sock");
    opts.stateDir = envString("XPS_SERVE_DIR", base + "/serve");
    opts.queueMax = envUInt("XPS_SERVE_QUEUE_MAX", 16);
    opts.defaultDeadlineS = static_cast<double>(
        envUInt("XPS_SERVE_DEADLINE_S", 0));
    opts.drainS =
        static_cast<double>(envUInt("XPS_SERVE_DRAIN_S", 5));
    opts.workers =
        static_cast<int>(envInt("XPS_SERVE_WORKERS", 2));
    opts.heartbeatTimeoutSeconds = static_cast<double>(
        envUInt("XPS_HEARTBEAT_S", 30));
    opts.maxAttempts =
        static_cast<int>(envInt("XPS_JOB_RETRIES", 3));
    opts.checkpointEvery = envUInt("XPS_SERVE_CKPT_EVERY", 8);
    // Fractional cadences matter here (CI scrapes fast test runs),
    // so this knob alone parses as a double.
    opts.metricsExportS = std::strtod(
        envString("XPS_METRICS_EXPORT_S", "0").c_str(), nullptr);
    return opts;
}

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      pool_([&] {
          ProcPoolOptions p;
          p.workers = opts_.workers;
          p.heartbeatTimeoutSeconds = opts_.heartbeatTimeoutSeconds;
          p.maxAttempts = opts_.maxAttempts;
          p.backoffBaseSeconds = 0.02;
          p.backoffCapSeconds = 0.5;
          return p;
      }()),
      store_(opts_.stateDir + "/store"),
      journal_(opts_.stateDir + "/journal")
{
    // A client that disconnects mid-response must cost an EPIPE
    // errno, not the daemon's life.
    ::signal(SIGPIPE, SIG_IGN);
    std::error_code ec;
    fs::create_directories(opts_.stateDir + "/staging", ec);
}

Server::~Server()
{
    for (const Connection &c : conns_)
        ::close(c.fd);
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        std::error_code ec;
        fs::remove(opts_.socketPath, ec);
        fs::remove(opts_.socketPath + ".pid", ec);
    }
}

void
Server::closeInheritedFds()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
    for (const Connection &c : conns_)
        ::close(c.fd);
}

namespace
{

/** Liveness for pidfile takeover. kill(pid, 0) alone is not enough:
 *  it succeeds for zombies, and a SIGKILL'd daemon whose parent has
 *  not reaped it yet would block its own successor forever. A zombie
 *  owns no socket — treat it as dead. */
bool
pidIsRunning(long pid)
{
    if (::kill(static_cast<pid_t>(pid), 0) != 0)
        return false;
    std::string stat;
    if (!readFile("/proc/" + std::to_string(pid) + "/stat", stat))
        return true; // no procfs to refine the kill() verdict
    // State is the first field after the parenthesised comm (which
    // may itself contain spaces and parens).
    const size_t paren = stat.rfind(')');
    for (size_t i = paren == std::string::npos ? 0 : paren + 1;
         i < stat.size(); ++i) {
        if (stat[i] == ' ')
            continue;
        return stat[i] != 'Z';
    }
    return true;
}

} // namespace

void
Server::takeoverSocket()
{
    const std::string pidfile = opts_.socketPath + ".pid";
    std::string content;
    if (readFile(pidfile, content)) {
        const long pid = std::strtol(content.c_str(), nullptr, 10);
        if (pid > 0 && pidIsRunning(pid))
            fatal("xps-serve: another daemon (pid %ld) owns %s", pid,
                  opts_.socketPath.c_str());
        // Dead owner: sweep its socket and pidfile.
        std::error_code ec;
        fs::remove(pidfile, ec);
        fs::remove(opts_.socketPath, ec);
        Metrics::global().counter("serve.stale_swept").add();
        inform("xps-serve: swept stale socket of dead pid %ld", pid);
    } else if (fs::exists(opts_.socketPath)) {
        // Socket without a pidfile: a crashed daemon never wrote or
        // already lost its pidfile. Nobody can own it — sweep.
        std::error_code ec;
        fs::remove(opts_.socketPath, ec);
        Metrics::global().counter("serve.stale_swept").add();
        inform("xps-serve: swept orphaned socket %s",
               opts_.socketPath.c_str());
    }
    atomicWriteFile(pidfile, std::to_string(::getpid()) + "\n");
}

void
Server::boot()
{
    obs::setProcessName("serve/daemon");
    sockaddr_un addr = {};
    if (opts_.socketPath.size() >= sizeof(addr.sun_path))
        fatal("xps-serve: socket path is longer than sun_path (%zu "
              "bytes): %s", sizeof(addr.sun_path),
              opts_.socketPath.c_str());
    takeoverSocket();
    recoverJournal();

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("xps-serve: socket: %s", std::strerror(errno));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("xps-serve: bind(%s): %s", opts_.socketPath.c_str(),
              std::strerror(errno));
    if (::listen(listenFd_, 64) != 0)
        fatal("xps-serve: listen: %s", std::strerror(errno));
    inform("xps-serve: listening on %s (%d workers, queue max %zu)",
           opts_.socketPath.c_str(), pool_.options().workers,
           opts_.queueMax);
    // An export cadence implies a scraper wanting percentiles.
    if (opts_.metricsExportS > 0)
        Metrics::enableHistograms();
    maybeExportMetrics(true);
    booted_ = true;
}

void
Server::recoverJournal()
{
    for (const JournalRecord &rec : journal_.recover()) {
        Request req;
        std::string error;
        if (!parseRequest(rec.request, req, error) ||
            !req.isCompute()) {
            warn("journal: dropping unparsable recovered job %s (%s)",
                 rec.key.c_str(), error.c_str());
            journal_.remove(rec.key);
            continue;
        }
        const CsvManifest identity = requestIdentity(req);
        CsvDoc doc;
        if (store_.lookup(identity, doc)) {
            // The crash landed between publish and record removal.
            journal_.remove(rec.key);
            continue;
        }
        Job job;
        job.seq = rec.seq;
        job.key = rec.key;
        // A client-minted rid survives recovery through the journaled
        // request line; a daemon-minted one did not, so re-mint.
        if (req.rid.empty())
            req.rid = "r" + std::to_string(::getpid()) + "-" +
                      std::to_string(rec.seq);
        job.req = std::move(req);
        job.identity = identity;
        job.requestLine = rec.request;
        job.resultPath =
            opts_.stateDir + "/staging/" + rec.key + ".csv";
        job.accepted = Clock::now();
        jobs_.push_back(std::move(job));
        inform("journal: resuming job %s (%s)", rec.key.c_str(),
               opName(jobs_.back().req.op));
    }
}

int
Server::run()
{
    boot();
    while (!stopRequested())
        step(20);
    return drain();
}

void
Server::step(int timeoutMs)
{
    if (!booted_)
        boot();
    dispatch();
    pool_.poll(0);
    harvest();
    maybeExportMetrics(false);

    std::vector<pollfd> fds;
    fds.push_back({listenFd_, POLLIN, 0});
    for (const Connection &c : conns_)
        fds.push_back({c.fd, POLLIN, 0});
    // Bounded wait: pool supervision and signal checks stay live even
    // when no socket stirs.
    const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                         timeoutMs);
    if (n <= 0)
        return; // timeout or EINTR; the caller loops
    // Walk backwards: closing a connection erases from conns_. The
    // accept comes last so conns_ and fds stay index-aligned (an
    // early accept would grow conns_ past the polled set and read
    // revents past the end of fds).
    for (size_t i = conns_.size(); i-- > 0;) {
        const short ev = fds[i + 1].revents;
        if (ev & (POLLERR | POLLHUP))
            closeClient(i);
        else if (ev & POLLIN)
            readClient(i);
    }
    if (fds[0].revents & POLLIN)
        acceptClient();
}

void
Server::acceptClient()
{
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0)
        return;
    XPS_FAULT_POINT("serve.accept");
    Metrics::global().counter("serve.connections").add();
    obs::instant("serve.accept", "serve");
    conns_.push_back({fd, {}});
}

void
Server::closeClient(size_t idx)
{
    const int fd = conns_[idx].fd;
    ::close(fd);
    conns_.erase(conns_.begin() + static_cast<long>(idx));
    // The job outlives its waiters: the result still lands in the
    // store, so a reconnecting client gets a cache hit.
    for (Job &job : jobs_) {
        auto &w = job.waiters;
        for (size_t i = w.size(); i-- > 0;) {
            if (w[i].first == fd)
                w.erase(w.begin() + static_cast<long>(i));
        }
    }
}

void
Server::readClient(size_t idx)
{
    char buf[4096];
    const ssize_t n = ::read(conns_[idx].fd, buf, sizeof(buf));
    if (n <= 0) {
        closeClient(idx);
        return;
    }
    conns_[idx].buf.append(buf, static_cast<size_t>(n));
    if (conns_[idx].buf.size() > (1u << 20)) {
        warn("xps-serve: dropping client with a >1MiB pending line");
        closeClient(idx);
        return;
    }
    const int fd = conns_[idx].fd;
    std::string &acc = conns_[idx].buf;
    size_t nl;
    while ((nl = acc.find('\n')) != std::string::npos) {
        const std::string line = acc.substr(0, nl);
        acc.erase(0, nl + 1);
        if (!line.empty())
            handleLine(fd, line);
        // handleLine may have closed this connection (write error);
        // re-find it to stay safe.
        bool alive = false;
        for (const Connection &c : conns_)
            alive |= c.fd == fd;
        if (!alive)
            return;
    }
}

void
Server::handleLine(int fd, const std::string &line)
{
    Metrics &metrics = Metrics::global();
    metrics.counter("serve.requests").add();
    Request req;
    std::string error;
    if (!parseRequest(line, req, error)) {
        metrics.counter("serve.bad_requests").add();
        obs::log::event(obs::log::Level::Warn, "serve",
                        "rejected request", [&] {
                            return obs::Args().add("error", error);
                        });
        // req.id survives any failure past the JSON parse itself, so
        // most rejections still echo the client's correlation id.
        respond(fd, errorResponse(req.id, error));
        return;
    }
    // Every span and log event from here to the response (and, for
    // compute ops, through dispatch, the forked worker and harvest)
    // carries this request id; the merger turns the shared rid into
    // Perfetto flow events.
    if (req.rid.empty())
        req.rid = "d" + std::to_string(::getpid()) + "-" +
                  std::to_string(++ridCounter_);
    obs::RequestScope ridScope(req.rid);
    obs::instant("serve.request", "serve", [&] {
        return obs::Args()
            .add("op", opName(req.op))
            .add("client", req.client);
    });
    if (req.op == Request::Op::Ping) {
        respond(fd, "{\"id\":\"" + obs::json::escape(req.id) +
                        "\",\"status\":\"ok\",\"op\":\"ping\"}");
        return;
    }
    if (req.op == Request::Op::Stats) {
        respond(fd, statsResponse(req.id));
        return;
    }
    if (req.op == Request::Op::Metrics) {
        respond(fd, metricsResponse(req.id));
        return;
    }
    handleCompute(fd, req, line);
}

void
Server::handleCompute(int fd, const Request &req,
                      const std::string &line)
{
    Metrics &metrics = Metrics::global();
    const CsvManifest identity = requestIdentity(req);
    CsvDoc doc;
    if (store_.lookup(identity, doc)) {
        respond(fd, okResponse(req.id, doc, true, false));
        return;
    }
    const std::string key = identityKey(identity);
    for (Job &job : jobs_) {
        if (job.key == key) {
            job.waiters.emplace_back(fd, req.id);
            metrics.counter("serve.coalesced").add();
            return;
        }
    }
    size_t queued = 0;
    for (const Job &job : jobs_)
        queued += job.started ? 0 : 1;
    if (queued >= opts_.queueMax) {
        metrics.counter("serve.shed").add();
        obs::log::event(obs::log::Level::Warn, "serve",
                        "request shed by admission control", [&] {
                            return obs::Args()
                                .add("op", opName(req.op))
                                .add("client", req.client)
                                .add("queued",
                                     static_cast<uint64_t>(queued));
                        });
        const double retry = std::max(
            1.0, static_cast<double>(jobs_.size()) /
                     std::max(1, pool_.options().workers));
        respond(fd, overloadedResponse(req.id, retry));
        return;
    }

    Job job;
    job.seq = journal_.nextSeq();
    job.key = key;
    job.req = req;
    job.identity = identity;
    job.requestLine = line;
    job.resultPath = opts_.stateDir + "/staging/" + key + ".csv";
    job.waiters.emplace_back(fd, req.id);
    job.accepted = Clock::now();
    journalRecord({key, "accepted", job.seq, line});
    metrics.counter("serve.accepted").add();
    if (Metrics::histogramsEnabled())
        metrics.histogram("serve.queue_depth").record(queued + 1);
    jobs_.push_back(std::move(job));
}

/** journal_.record with the §14 instrumentation: a serve.journal
 *  span on the timeline and a serve.journal_write latency sample —
 *  fsync latency is the daemon's dominant inline cost. */
void
Server::journalRecord(const JournalRecord &rec)
{
    const bool timed = obs::enabled() || Metrics::histogramsEnabled();
    const uint64_t t0 = timed ? obs::detail::nowNs() : 0;
    journal_.record(rec);
    if (!timed)
        return;
    const uint64_t t1 = obs::detail::nowNs();
    if (obs::enabled())
        obs::detail::emitSpan("serve.journal", "serve", t0, t1,
                              obs::Args()
                                  .add("key", rec.key)
                                  .add("state", rec.state)
                                  .str());
    if (Metrics::histogramsEnabled())
        Metrics::global().histogram("serve.journal_write")
            .record(t1 - t0);
}

ProcJob
Server::makeProcJob(Job &job)
{
    ProcJob pj;
    pj.name = std::string(opName(job.req.op)) + "." + job.key;
    pj.deadlineSeconds = job.req.deadlineS > 0
                             ? job.req.deadlineS
                             : opts_.defaultDeadlineS;
    const Request req = job.req;
    const CsvManifest identity = job.identity;
    const std::string result_path = job.resultPath;
    const ServerOptions opts = opts_;
    const std::string ckpt_dir =
        opts_.stateDir + "/staging/ckpt." + job.key;
    pj.run = [this, req, identity, result_path, opts, ckpt_dir]() {
        // In the forked worker: drop the daemon's listening socket and
        // client connections. A SIGKILL'd daemon's surviving
        // descendants must not keep its accept queue connectable (a
        // client would connect into a backlog nobody will ever accept
        // from) or hold client connections half-open.
        closeInheritedFds();
        // Inherit the request context: every span this worker emits
        // (pool.job, sim.run, anneal.*) joins the request's flow in
        // the merged timeline.
        obs::setRequestContext(req.rid);
        switch (req.op) {
          case Request::Op::Whatif:
            return runWhatif(req, identity, result_path);
          case Request::Op::Matrix:
            return runMatrix(req, identity, result_path, opts);
          case Request::Op::Explore:
            return runExplore(req, identity, result_path, opts,
                              ckpt_dir);
          default:
            return 125;
        }
    };
    pj.onSuccess = [result_path, identity]() {
        CsvDoc doc;
        return readCsvValidated(result_path, doc, identity);
    };
    return pj;
}

void
Server::dispatch()
{
    while (started_ <
           static_cast<size_t>(pool_.options().workers)) {
        // Fair share: among queued jobs, serve the client that has
        // waited longest since its last dispatch; ties (and new
        // clients) go to the oldest request.
        Job *pick = nullptr;
        for (Job &job : jobs_) {
            if (job.started)
                continue;
            if (!pick) {
                pick = &job;
                continue;
            }
            const auto it = lastServed_.find(job.req.client);
            const auto pt = lastServed_.find(pick->req.client);
            const uint64_t js =
                it == lastServed_.end() ? 0 : it->second;
            const uint64_t ps =
                pt == lastServed_.end() ? 0 : pt->second;
            if (js < ps || (js == ps && job.seq < pick->seq))
                pick = &job;
        }
        if (!pick)
            return;
        obs::RequestScope ridScope(pick->req.rid);
        // The accepted->dispatched wait is the queue's contribution
        // to the request's latency: one serve.queue span on the
        // timeline, one serve.queue_wait histogram sample.
        const auto now = Clock::now();
        const uint64_t waitNs = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - pick->accepted)
                .count());
        if (obs::enabled()) {
            const uint64_t nowNs = static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    now.time_since_epoch())
                    .count());
            obs::detail::emitSpan("serve.queue", "serve",
                                  nowNs - waitNs, nowNs,
                                  obs::Args()
                                      .add("op", opName(pick->req.op))
                                      .add("key", pick->key)
                                      .str());
        }
        if (Metrics::histogramsEnabled())
            Metrics::global().histogram("serve.queue_wait")
                .record(waitNs);
        journalRecord(
            {pick->key, "started", pick->seq, pick->requestLine});
        pick->ticket = pool_.submit(makeProcJob(*pick));
        pick->started = true;
        lastServed_[pick->req.client] = pick->seq;
        ++started_;
        Metrics::global().counter("serve.dispatched").add();
        obs::instant("serve.dispatch", "serve", [&] {
            return obs::Args()
                .add("op", opName(pick->req.op))
                .add("key", pick->key);
        });
    }
}

void
Server::harvest()
{
    Metrics &metrics = Metrics::global();
    for (auto &[ticket, outcome] : pool_.takeCompleted()) {
        size_t idx = SIZE_MAX;
        for (size_t i = 0; i < jobs_.size(); ++i) {
            if (jobs_[i].started && jobs_[i].ticket == ticket)
                idx = i;
        }
        if (idx == SIZE_MAX)
            continue; // already drained
        Job job = std::move(jobs_[idx]);
        jobs_.erase(jobs_.begin() + static_cast<long>(idx));
        --started_;
        obs::RequestScope ridScope(job.req.rid);

        if (outcome.status == ProcJobOutcome::Status::Quarantined) {
            metrics.counter("serve.failed").add();
            obs::log::event(obs::log::Level::Error, "serve",
                            "job quarantined", [&] {
                                return obs::Args()
                                    .add("op", opName(job.req.op))
                                    .add("key", job.key)
                                    .add("attempts", outcome.attempts)
                                    .add("error", outcome.lastError);
                            });
            journal_.remove(job.key);
            answerWaiters(
                job, errorResponse(
                         "", "job failed after " +
                                 std::to_string(outcome.attempts) +
                                 " attempts: " + outcome.lastError));
            continue;
        }
        CsvDoc doc;
        if (!readCsvValidated(job.resultPath, doc, job.identity)) {
            // onSuccess validated this same file; losing it between
            // merge and harvest is a genuine server-side fault.
            metrics.counter("serve.failed").add();
            journal_.remove(job.key);
            answerWaiters(job, errorResponse(
                                   "", "result lost before harvest"));
            continue;
        }
        const bool degraded = isDegraded(doc);
        if (degraded) {
            // Never cache a degradation a healthy rerun would not
            // reproduce; the response is marked instead.
            metrics.counter("serve.degraded_responses").add();
        } else {
            const bool timed =
                obs::enabled() || Metrics::histogramsEnabled();
            const uint64_t t0 = timed ? obs::detail::nowNs() : 0;
            store_.publish(job.identity, doc);
            if (timed) {
                const uint64_t t1 = obs::detail::nowNs();
                if (obs::enabled())
                    obs::detail::emitSpan(
                        "serve.publish", "serve", t0, t1,
                        obs::Args().add("key", job.key).str());
                if (Metrics::histogramsEnabled())
                    metrics.histogram("serve.publish")
                        .record(t1 - t0);
            }
        }
        journalRecord(
            {job.key, "completed", job.seq, job.requestLine});
        metrics.counter("serve.completed").add();
        const uint64_t jobNs = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - job.accepted)
                .count());
        if (Metrics::histogramsEnabled()) {
            metrics.histogram("serve.job").record(jobNs);
            // Per-op SLO latency: accept-to-respond per operation.
            metrics.histogram(std::string("serve.op.") +
                              opName(job.req.op))
                .record(jobNs);
        }
        obs::log::event(obs::log::Level::Info, "serve",
                        "job completed", [&] {
                            return obs::Args()
                                .add("op", opName(job.req.op))
                                .add("key", job.key)
                                .add("ms", static_cast<double>(jobNs) /
                                               1e6)
                                .add("degraded", degraded ? 1 : 0)
                                .add("waiters",
                                     static_cast<uint64_t>(
                                         job.waiters.size()));
                        });
        for (const auto &[fd, id] : job.waiters) {
            if (connected(fd))
                respond(fd, okResponse(id, doc, false, degraded));
        }
        journal_.remove(job.key);
        std::error_code ec;
        fs::remove(job.resultPath, ec);
    }
}

bool
Server::connected(int fd) const
{
    for (const Connection &c : conns_) {
        if (c.fd == fd)
            return true;
    }
    return false;
}

void
Server::answerWaiters(Job &job, const std::string &payload)
{
    // A shared payload (error / shutting-down) for every waiter; ok
    // responses are built per waiter in harvest() so each echoes its
    // own request id.
    for (const auto &[fd, id] : job.waiters) {
        (void)id;
        if (connected(fd))
            respond(fd, payload);
    }
    job.waiters.clear();
}

void
Server::respond(int fd, const std::string &payload)
{
    obs::ScopedSpan span("serve.respond", "serve");
    XPS_FAULT_POINT("serve.respond");
    const std::string line = payload + "\n";
    size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd, line.data() + off, line.size() - off);
        if (n <= 0) {
            if (errno == EINTR)
                continue;
            // Client gone (EPIPE et al.): close our side; the store
            // keeps the result for its retry.
            for (size_t i = 0; i < conns_.size(); ++i) {
                if (conns_[i].fd == fd) {
                    closeClient(i);
                    break;
                }
            }
            return;
        }
        off += static_cast<size_t>(n);
    }
    Metrics::global().counter("serve.responses").add();
}

std::string
Server::statsResponse(const std::string &id) const
{
    Metrics &metrics = Metrics::global();
    size_t queued = 0;
    for (const Job &job : jobs_)
        queued += job.started ? 0 : 1;
    std::ostringstream out;
    out << "{\"id\":\"" << obs::json::escape(id)
        << "\",\"status\":\"ok\",\"op\":\"stats\""
        << ",\"queued\":" << queued
        << ",\"running\":" << started_
        << ",\"workers\":" << pool_.options().workers
        << ",\"queue_max\":" << opts_.queueMax;
    for (const char *name :
         {"serve.requests", "serve.accepted", "serve.completed",
          "serve.failed", "serve.shed", "serve.coalesced",
          "serve.cache_hits", "serve.cache_misses",
          "serve.cache_publishes", "serve.degraded_responses",
          "serve.journal_recovered", "serve.stale_swept"}) {
        // "serve.cache_hits" -> "cache_hits"
        out << ",\"" << (name + 6) << "\":"
            << metrics.counter(name).get();
    }
    out << '}';
    return out.str();
}

/**
 * The `metrics` op: the live registry — counters, timers, and
 * p50/p95/p99 from the log-scaled histograms — plus queue state, as
 * one NDJSON-framed line. Same snapshot source as the at-exit
 * XPS_METRICS_JSON dump, so a scraper and the dump always agree.
 */
std::string
Server::metricsResponse(const std::string &id) const
{
    size_t queued = 0;
    for (const Job &job : jobs_)
        queued += job.started ? 0 : 1;
    const Metrics::Snapshot snap = Metrics::global().snapshot();
    std::ostringstream out;
    out << "{\"id\":\"" << obs::json::escape(id)
        << "\",\"status\":\"ok\",\"op\":\"metrics\""
        << ",\"queued\":" << queued
        << ",\"running\":" << started_
        << ",\"workers\":" << pool_.options().workers
        << ",\"queue_max\":" << opts_.queueMax
        << ",\"counters\":{";
    for (size_t i = 0; i < snap.counters.size(); ++i)
        out << (i ? ",\"" : "\"")
            << obs::json::escape(snap.counters[i].first)
            << "\":" << snap.counters[i].second;
    out << "},\"timers_seconds\":{";
    char buf[64];
    for (size_t i = 0; i < snap.timers.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%.6f",
                      snap.timers[i].second);
        out << (i ? ",\"" : "\"")
            << obs::json::escape(snap.timers[i].first) << "\":"
            << buf;
    }
    out << "},\"histograms_ns\":{";
    for (size_t i = 0; i < snap.histograms.size(); ++i) {
        const Metrics::HistogramSummary &h =
            snap.histograms[i].second;
        std::snprintf(buf, sizeof(buf), "%.1f", h.meanNs);
        out << (i ? ",\"" : "\"")
            << obs::json::escape(snap.histograms[i].first)
            << "\":{\"count\":" << h.count << ",\"p50\":" << h.p50Ns
            << ",\"p95\":" << h.p95Ns << ",\"p99\":" << h.p99Ns
            << ",\"max\":" << h.maxNs << ",\"mean\":" << buf << '}';
    }
    out << "}}";
    return out.str();
}

/** Write the Prometheus snapshot to <stateDir>/metrics.prom on the
 *  XPS_METRICS_EXPORT_S cadence (atomically — a scraper mid-read
 *  never sees a torn file). `force` flushes regardless of cadence
 *  (boot and drain). */
void
Server::maybeExportMetrics(bool force)
{
    if (opts_.metricsExportS <= 0)
        return;
    const auto now = Clock::now();
    if (!force &&
        std::chrono::duration<double>(now - lastMetricsExport_)
                .count() < opts_.metricsExportS)
        return;
    lastMetricsExport_ = now;
    Metrics::global().writePrometheus(opts_.stateDir +
                                      "/metrics.prom");
}

int
Server::drain()
{
    inform("xps-serve: drain requested; %zu job(s) in flight "
           "(%zu running)", jobs_.size(), started_);
    // Stop admissions first: no new connections, no new reads.
    ::close(listenFd_);
    std::error_code ec;
    fs::remove(opts_.socketPath, ec);
    fs::remove(opts_.socketPath + ".pid", ec);
    listenFd_ = -1;

    // Queued-but-unstarted jobs stay journaled for the next boot;
    // their waiters learn to retry instead of hanging.
    for (Job &job : jobs_) {
        if (!job.started)
            answerWaiters(job, shuttingDownResponse(""));
    }
    // Finish the running jobs within the drain budget.
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(opts_.drainS));
    while (started_ > 0 && Clock::now() < deadline) {
        pool_.poll(20);
        harvest();
    }
    if (started_ > 0) {
        warn("xps-serve: drain budget exhausted; %zu running job(s) "
             "stay journaled for the next boot", started_);
        // Workers die with us (PR_SET_PDEATHSIG); the journal keeps
        // their jobs.
    }
    for (const Connection &c : conns_)
        ::close(c.fd);
    conns_.clear();
    maybeExportMetrics(true); // final snapshot for the scraper
    obs::flushTrace();
    obs::log::flushLog();
    inform("xps-serve: drained; exiting gracefully");
    return kGracefulExitCode;
}

} // namespace serve
} // namespace xps
