#include "serve/protocol.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json.hh"
#include "timing/unit_timing.hh"
#include "workload/trace.hh"

namespace xps
{
namespace serve
{

namespace
{

using obs::json::Value;

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ULL;
    for (const char c : s)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    return h;
}

bool
fail(std::string &error, const std::string &why)
{
    error = why;
    return false;
}

/** A positive integer field within [1, cap]; `def` when absent. */
bool
uintField(const Value &v, const char *key, uint64_t def, uint64_t cap,
          uint64_t &out, std::string &error)
{
    const Value *f = v.find(key);
    if (!f) {
        out = def;
        return true;
    }
    if (f->type != Value::Type::Number || f->number < 1 ||
        f->number != std::floor(f->number) ||
        f->number > static_cast<double>(cap)) {
        return fail(error, std::string(key) + " must be an integer in [1, " +
                               std::to_string(cap) + "]");
    }
    out = static_cast<uint64_t>(f->number);
    return true;
}

/**
 * Apply one config-override object onto a base CoreConfig. Closed
 * world: every key must be a known architectural field, and the
 * resulting configuration must satisfy the timing model.
 */
bool
parseConfig(const Value &obj, CoreConfig &cfg, std::string &error)
{
    if (!obj.isObject())
        return fail(error, "config must be an object");
    for (const auto &[key, val] : obj.fields) {
        if (val.type != Value::Type::Number)
            return fail(error, "config." + key + " must be a number");
        const double x = val.number;
        auto asU32 = [&](uint32_t &field) {
            field = static_cast<uint32_t>(x);
            return x >= 1 && x == std::floor(x) && x <= 1u << 20;
        };
        auto asU64 = [&](uint64_t &field) {
            field = static_cast<uint64_t>(x);
            return x >= 1 && x == std::floor(x) && x <= 1u << 24;
        };
        auto asInt = [&](int &field) {
            field = static_cast<int>(x);
            return x >= 1 && x == std::floor(x) && x <= 64;
        };
        bool ok;
        if (key == "clock_ns")
            ok = (cfg.clockNs = x) > 0.0 && x < 100.0;
        else if (key == "width")
            ok = asU32(cfg.width);
        else if (key == "rob_size")
            ok = asU32(cfg.robSize);
        else if (key == "iq_size")
            ok = asU32(cfg.iqSize);
        else if (key == "lsq_size")
            ok = asU32(cfg.lsqSize);
        else if (key == "sched_depth")
            ok = asInt(cfg.schedDepth);
        else if (key == "lsq_depth")
            ok = asInt(cfg.lsqDepth);
        else if (key == "l1_sets")
            ok = asU64(cfg.l1Sets);
        else if (key == "l1_assoc")
            ok = asU32(cfg.l1Assoc);
        else if (key == "l1_line_bytes")
            ok = asU32(cfg.l1LineBytes);
        else if (key == "l1_cycles")
            ok = asInt(cfg.l1Cycles);
        else if (key == "l2_sets")
            ok = asU64(cfg.l2Sets);
        else if (key == "l2_assoc")
            ok = asU32(cfg.l2Assoc);
        else if (key == "l2_line_bytes")
            ok = asU32(cfg.l2LineBytes);
        else if (key == "l2_cycles")
            ok = asInt(cfg.l2Cycles);
        else
            return fail(error, "unknown config key '" + key + "'");
        if (!ok)
            return fail(error, "config." + key + " is out of range");
    }
    const UnitTiming timing;
    const std::string violation = cfg.checkFits(timing);
    if (!violation.empty())
        return fail(error, "infeasible config: " + violation);
    return true;
}

} // namespace

const char *
opName(Request::Op op)
{
    switch (op) {
      case Request::Op::Ping: return "ping";
      case Request::Op::Stats: return "stats";
      case Request::Op::Metrics: return "metrics";
      case Request::Op::Whatif: return "whatif";
      case Request::Op::Matrix: return "matrix";
      case Request::Op::Explore: return "explore";
    }
    return "unknown";
}

bool
parseRequest(const std::string &line, Request &req, std::string &error)
{
    Value root;
    if (!obs::json::parse(line, root) || !root.isObject())
        return fail(error, "malformed JSON request");

    const std::string op = root.stringOr("op", "");
    if (op == "ping")
        req.op = Request::Op::Ping;
    else if (op == "stats")
        req.op = Request::Op::Stats;
    else if (op == "metrics")
        req.op = Request::Op::Metrics;
    else if (op == "whatif")
        req.op = Request::Op::Whatif;
    else if (op == "matrix")
        req.op = Request::Op::Matrix;
    else if (op == "explore")
        req.op = Request::Op::Explore;
    else
        return fail(error, "unknown op '" + op + "'");

    req.id = root.stringOr("id", "");
    req.client = root.stringOr("client", "anon");
    req.rid = root.stringOr("rid", "");
    if (req.rid.size() > 64)
        return fail(error, "rid must be at most 64 characters");
    req.deadlineS = root.numberOr("deadline_s", 0.0);
    if (req.deadlineS < 0 || req.deadlineS > 86400)
        return fail(error, "deadline_s must be in [0, 86400]");
    if (!req.isCompute())
        return true;

    const Value *wl = root.find("workloads");
    if (!wl || !wl->isArray() || wl->items.empty())
        return fail(error, "workloads must be a non-empty array");
    const auto &known = spec2000int();
    for (const Value &item : wl->items) {
        if (item.type != Value::Type::String)
            return fail(error, "workloads entries must be strings");
        const WorkloadProfile *found = nullptr;
        for (const WorkloadProfile &p : known) {
            if (p.name == item.str) {
                found = &p;
                break;
            }
        }
        if (!found)
            return fail(error, "unknown workload '" + item.str + "'");
        req.workloads.push_back(*found);
    }

    if (!uintField(root, "instrs", 20000, 2000000, req.instrs, error))
        return false;

    if (req.op == Request::Op::Whatif) {
        CoreConfig cfg = CoreConfig::initial();
        const Value *c = root.find("config");
        if (c && !parseConfig(*c, cfg, error))
            return false;
        req.configs.push_back(cfg);
    } else if (req.op == Request::Op::Matrix) {
        const Value *cs = root.find("configs");
        if (!cs || !cs->isArray() || cs->items.empty())
            return fail(error, "configs must be a non-empty array");
        for (const Value &c : cs->items) {
            CoreConfig cfg = CoreConfig::initial();
            if (!parseConfig(c, cfg, error))
                return false;
            req.configs.push_back(cfg);
        }
        // PerfMatrix is square by construction (column c is the
        // configuration customized for workload c).
        if (req.configs.size() != req.workloads.size())
            return fail(error,
                        "matrix requests need one config per workload");
    } else { // Explore
        if (!uintField(root, "sa_iters", 48, 100000, req.saIters,
                       error))
            return false;
        uint64_t rounds = 0;
        if (!uintField(root, "rounds", 2, 16, rounds, error))
            return false;
        req.rounds = static_cast<int>(rounds);
        if (!uintField(root, "seed", 7, UINT64_MAX / 2, req.seed,
                       error))
            return false;
    }
    return true;
}

CsvManifest
requestIdentity(const Request &req)
{
    CsvManifest m;
    m.set("schema", kSchema);
    m.set("op", opName(req.op));
    m.set("instrs", req.instrs);
    for (const WorkloadProfile &p : req.workloads)
        m.set("profile." + p.name, profileFingerprint(p));
    for (size_t i = 0; i < req.configs.size(); ++i)
        m.set("config." + std::to_string(i),
              configFingerprint(req.configs[i]));
    if (req.op == Request::Op::Explore) {
        m.set("sa_iters", req.saIters);
        m.set("rounds", static_cast<uint64_t>(req.rounds));
        m.set("seed", req.seed);
    }
    return m;
}

std::string
identityKey(const CsvManifest &identity)
{
    std::ostringstream flat;
    for (const auto &[key, value] : identity.entries)
        flat << key << '=' << value << '\n';
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fnv1a(flat.str())));
    return hex;
}

namespace
{

void
openResponse(std::ostringstream &out, const std::string &id,
             const char *status)
{
    out << "{\"id\":\"" << obs::json::escape(id) << "\",\"status\":\""
        << status << '"';
}

} // namespace

std::string
okResponse(const std::string &id, const CsvDoc &doc, bool cacheHit,
           bool degraded)
{
    std::ostringstream out;
    openResponse(out, id, "ok");
    out << ",\"cache\":\"" << (cacheHit ? "hit" : "miss") << '"';
    if (degraded)
        out << ",\"degraded\":true";
    out << ",\"results\":[";
    for (size_t r = 0; r < doc.rows.size(); ++r) {
        out << (r ? ",{" : "{");
        for (size_t c = 0; c < doc.header.size(); ++c) {
            out << (c ? ",\"" : "\"")
                << obs::json::escape(doc.header[c]) << "\":\""
                << obs::json::escape(doc.rows[r][c]) << '"';
        }
        out << '}';
    }
    out << "]}";
    return out.str();
}

std::string
errorResponse(const std::string &id, const std::string &message)
{
    std::ostringstream out;
    openResponse(out, id, "error");
    out << ",\"error\":\"" << obs::json::escape(message) << "\"}";
    return out.str();
}

std::string
overloadedResponse(const std::string &id, double retryAfterS)
{
    std::ostringstream out;
    openResponse(out, id, "overloaded");
    out << ",\"retry_after_s\":" << retryAfterS << '}';
    return out.str();
}

std::string
shuttingDownResponse(const std::string &id)
{
    std::ostringstream out;
    openResponse(out, id, "retry");
    out << ",\"error\":\"daemon is draining; job journaled for the "
           "next boot\"}";
    return out.str();
}

} // namespace serve
} // namespace xps
